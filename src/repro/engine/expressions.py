"""Typed expression trees with vectorised evaluation.

Expressions are built either programmatically (``col("a") > 5``) or by the
SQL parser.  Evaluation is vectorised over a :class:`~repro.engine.table.Table`
and returns a :class:`~repro.engine.column.Column`.

SQL three-valued logic is honoured: comparisons involving NULL yield NULL,
AND/OR follow Kleene logic, and WHERE keeps only rows whose predicate is
strictly TRUE.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Iterable

import numpy as np

from repro.engine import scanopt
from repro.engine.column import Column, column_from_parts
from repro.engine.table import Table
from repro.engine.types import DataType, common_type, python_value
from repro.errors import TypeMismatchError
from repro.obs.metrics import get_registry


class Expression(abc.ABC):
    """Base class of the expression AST."""

    @abc.abstractmethod
    def evaluate(self, table: Table) -> Column:
        """Evaluate over every row of ``table``."""

    @abc.abstractmethod
    def output_type(self, table: Table) -> DataType:
        """Logical type this expression produces against ``table``."""

    @abc.abstractmethod
    def referenced_columns(self) -> set[str]:
        """Names of all columns the expression reads."""

    @abc.abstractmethod
    def to_sql(self) -> str:
        """Render back to SQL text."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_sql()})"

    # -- operator sugar ---------------------------------------------------------

    def _binop(self, op: str, other: Any) -> "Expression":
        return Comparison(op, self, _lift(other))

    def __eq__(self, other: Any) -> "Expression":  # type: ignore[override]
        return self._binop("=", other)

    def __ne__(self, other: Any) -> "Expression":  # type: ignore[override]
        return self._binop("<>", other)

    def __lt__(self, other: Any) -> "Expression":
        return self._binop("<", other)

    def __le__(self, other: Any) -> "Expression":
        return self._binop("<=", other)

    def __gt__(self, other: Any) -> "Expression":
        return self._binop(">", other)

    def __ge__(self, other: Any) -> "Expression":
        return self._binop(">=", other)

    def __hash__(self) -> int:
        return hash(self.to_sql())

    def same_as(self, other: Any) -> bool:
        """Structural equality by rendered SQL.

        ``__eq__`` is operator sugar — ``a == b`` builds a
        :class:`Comparison` node rather than answering a boolean — so
        Python's ``in``/``set``/``dict`` membership over expressions is
        meaningless (any containment test is truthy).  Use ``same_as``
        (or ``any(e.same_as(x) for x in xs)``) wherever two expressions
        must be compared for semantic identity.
        """
        return isinstance(other, Expression) and self.to_sql() == other.to_sql()

    def __add__(self, other: Any) -> "Expression":
        return Arithmetic("+", self, _lift(other))

    def __sub__(self, other: Any) -> "Expression":
        return Arithmetic("-", self, _lift(other))

    def __mul__(self, other: Any) -> "Expression":
        return Arithmetic("*", self, _lift(other))

    def __truediv__(self, other: Any) -> "Expression":
        return Arithmetic("/", self, _lift(other))

    def __and__(self, other: Any) -> "Expression":
        return And(self, _lift(other))

    def __or__(self, other: Any) -> "Expression":
        return Or(self, _lift(other))

    def __invert__(self) -> "Expression":
        return Not(self)

    def between(self, low: Any, high: Any) -> "Expression":
        """``self BETWEEN low AND high`` (inclusive on both ends)."""
        return And(self._binop(">=", low), self._binop("<=", high))

    def isin(self, values: Iterable[Any]) -> "Expression":
        """``self IN (values...)``."""
        return InList(self, [_lift(v) for v in values])

    def is_null(self) -> "Expression":
        """``self IS NULL``."""
        return IsNull(self, negated=False)

    def is_not_null(self) -> "Expression":
        """``self IS NOT NULL``."""
        return IsNull(self, negated=True)


def _lift(value: Any) -> Expression:
    """Wrap a plain Python value as a Literal; pass expressions through."""
    if isinstance(value, Expression):
        return value
    return Literal(value)


def col(name: str) -> "ColumnRef":
    """Shorthand constructor for a column reference."""
    return ColumnRef(name)


def lit(value: Any) -> "Literal":
    """Shorthand constructor for a literal."""
    return Literal(value)


def strip_outer_parens(text: str) -> str:
    """Remove balanced outer parenthesis pairs from rendered SQL.

    ``to_sql`` wraps every compound expression in parens; output-column
    names derived from it want those outer pairs gone.  ``str.strip("()")``
    is the wrong tool — it eats paren *characters* from both ends, turning
    ``(a + b) * (c + d)`` into ``a + b) * (c + d``.  Only peel a leading
    ``(`` whose matching ``)`` is the final character.
    """
    while len(text) >= 2 and text[0] == "(" and text[-1] == ")":
        depth = 0
        for position, char in enumerate(text):
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0 and position != len(text) - 1:
                    return text
        text = text[1:-1]
    return text


class ColumnRef(Expression):
    """Reference to a named column of the input table."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, table: Table) -> Column:
        return table.column(self.name)

    def output_type(self, table: Table) -> DataType:
        return table.schema.type_of(self.name)

    def referenced_columns(self) -> set[str]:
        return {self.name}

    def to_sql(self) -> str:
        return self.name


class Literal(Expression):
    """A constant value (int, float, bool, str, or None)."""

    def __init__(self, value: Any) -> None:
        self.value = python_value(value)

    def evaluate(self, table: Table) -> Column:
        n = table.num_rows
        return Column([self.value] * n, dtype=self._dtype())

    def _dtype(self) -> DataType:
        if self.value is None:
            return DataType.FLOAT64
        if isinstance(self.value, bool):
            return DataType.BOOL
        if isinstance(self.value, int):
            return DataType.INT64
        if isinstance(self.value, float):
            return DataType.FLOAT64
        if isinstance(self.value, str):
            return DataType.STRING
        raise TypeMismatchError(f"unsupported literal {self.value!r}")

    def output_type(self, table: Table) -> DataType:
        return self._dtype()

    def referenced_columns(self) -> set[str]:
        return set()

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


_COMPARATORS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def _compare_codes(
    encoded: tuple[np.ndarray, np.ndarray], value: str, op: str
) -> np.ndarray:
    """Compare dictionary codes against a string literal.

    Codes are order-isomorphic to the strings, so the literal's slot in
    the sorted dictionary (via ``searchsorted``) turns every comparison
    into an int32 compare.  Null slots hold code -1 and produce arbitrary
    payload bits, masked out by validity exactly like the string path.
    """
    codes, values = encoded
    lo = int(np.searchsorted(values, value, side="left"))
    hi = int(np.searchsorted(values, value, side="right"))
    present = hi > lo
    if op == "=":
        return codes == lo if present else np.zeros(len(codes), dtype=bool)
    if op == "<>":
        return codes != lo if present else np.ones(len(codes), dtype=bool)
    if op == "<":
        return codes < lo
    if op == "<=":
        return codes < hi
    if op == ">":
        return codes >= hi
    return codes >= lo  # >=


def _combined_validity(left: Column, right: Column) -> np.ndarray | None:
    if left.validity is None and right.validity is None:
        return None
    lv = left.validity if left.validity is not None else np.ones(len(left), bool)
    rv = right.validity if right.validity is not None else np.ones(len(right), bool)
    return lv & rv


class Comparison(Expression):
    """Binary comparison: ``left <op> right`` with SQL null semantics."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _COMPARATORS:
            raise TypeMismatchError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    _FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}

    def _scalar_operand(self) -> tuple[Expression, Any, str] | None:
        """``(column_side, literal_value, op)`` when exactly one side is a
        non-NULL literal — the shape the scalar fast path handles.  The
        op is flipped when the literal is on the left."""
        if isinstance(self.right, Literal) and not isinstance(self.left, Literal):
            if self.right.value is not None:
                return self.left, self.right.value, self.op
        elif isinstance(self.left, Literal) and not isinstance(self.right, Literal):
            if self.left.value is not None:
                return self.right, self.left.value, self._FLIPPED[self.op]
        return None

    @staticmethod
    def _literal_dtype(value: Any) -> DataType:
        if isinstance(value, bool):
            return DataType.BOOL
        if isinstance(value, int):
            return DataType.INT64
        if isinstance(value, float):
            return DataType.FLOAT64
        return DataType.STRING

    def evaluate(self, table: Table) -> Column:
        scalar = self._scalar_operand()
        if scalar is not None:
            return self._evaluate_scalar(table, *scalar)
        lcol = self.left.evaluate(table)
        rcol = self.right.evaluate(table)
        ltype, rtype = lcol.dtype, rcol.dtype
        target = common_type(ltype, rtype)
        if target is DataType.STRING and self.op not in ("=", "<>", "<", "<=", ">", ">="):
            raise TypeMismatchError(f"operator {self.op} unsupported for strings")
        ldata = lcol.data
        rdata = rcol.data
        if target.is_numeric:
            ldata = ldata.astype(target.numpy_dtype, copy=False)
            rdata = rdata.astype(target.numpy_dtype, copy=False)
            result = _COMPARATORS[self.op](ldata, rdata)
        elif target is DataType.STRING:
            lu = np.asarray([v if v is not None else "" for v in ldata], dtype=str)
            ru = np.asarray([v if v is not None else "" for v in rdata], dtype=str)
            result = _COMPARATORS[self.op](lu, ru)
        else:  # BOOL
            if self.op not in ("=", "<>"):
                raise TypeMismatchError("booleans only support = and <>")
            result = _COMPARATORS[self.op](ldata, rdata)
        validity = _combined_validity(lcol, rcol)
        return column_from_parts(np.asarray(result, dtype=bool), DataType.BOOL, validity)

    def _evaluate_scalar(
        self, table: Table, side: Expression, value: Any, op: str
    ) -> Column:
        """Column-vs-literal comparison without materialising the literal.

        Produces the same bits as the general path: identical payload at
        valid slots, identical validity.  String columns carrying a
        dictionary compare int32 codes against the literal's position in
        the sorted dictionary instead of materialising string arrays.
        """
        inner = side.evaluate(table)
        target = common_type(inner.dtype, self._literal_dtype(value))
        if target.is_numeric:
            data = inner.data.astype(target.numpy_dtype, copy=False)
            result = _COMPARATORS[op](data, target.numpy_dtype.type(value))
        elif target is DataType.STRING:
            encoded = inner.dictionary() if scanopt.get_config().dict_encode else None
            if encoded is not None:
                result = _compare_codes(encoded, str(value), op)
                get_registry().counter("scan.dict_filters").inc()
            else:
                data = np.asarray(
                    [v if v is not None else "" for v in inner.data], dtype=str
                )
                result = _COMPARATORS[op](data, value)
        else:  # BOOL
            if op not in ("=", "<>"):
                raise TypeMismatchError("booleans only support = and <>")
            result = _COMPARATORS[op](inner.data, bool(value))
        return column_from_parts(
            np.asarray(result, dtype=bool), DataType.BOOL, inner.validity
        )

    def output_type(self, table: Table) -> DataType:
        common_type(self.left.output_type(table), self.right.output_type(table))
        return DataType.BOOL

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


_ARITH: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "%": np.mod,
}


class Arithmetic(Expression):
    """Binary arithmetic over numeric operands."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _ARITH:
            raise TypeMismatchError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, table: Table) -> Column:
        lcol = self.left.evaluate(table)
        rcol = self.right.evaluate(table)
        target = common_type(lcol.dtype, rcol.dtype)
        if not target.is_numeric:
            raise TypeMismatchError(f"arithmetic requires numeric operands, got {target.name}")
        if self.op == "/":
            target = DataType.FLOAT64
        ldata = lcol.data.astype(target.numpy_dtype, copy=False)
        rdata = rcol.data.astype(target.numpy_dtype, copy=False)
        validity = _combined_validity(lcol, rcol)
        if self.op in ("/", "%"):
            zero = rdata == 0
            if zero.any():
                safe = rdata.copy()
                safe[zero] = 1
                result = _ARITH[self.op](ldata, safe)
                zmask = ~zero
                validity = zmask if validity is None else (validity & zmask)
            else:
                result = _ARITH[self.op](ldata, rdata)
        else:
            result = _ARITH[self.op](ldata, rdata)
        return column_from_parts(np.asarray(result, dtype=target.numpy_dtype), target, validity)

    def output_type(self, table: Table) -> DataType:
        target = common_type(self.left.output_type(table), self.right.output_type(table))
        if not target.is_numeric:
            raise TypeMismatchError("arithmetic requires numeric operands")
        return DataType.FLOAT64 if self.op == "/" else target

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


class Negate(Expression):
    """Unary minus."""

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def evaluate(self, table: Table) -> Column:
        inner = self.operand.evaluate(table)
        if not inner.dtype.is_numeric:
            raise TypeMismatchError("unary minus requires a numeric operand")
        return column_from_parts(-inner.data, inner.dtype, inner.validity)

    def output_type(self, table: Table) -> DataType:
        dtype = self.operand.output_type(table)
        if not dtype.is_numeric:
            raise TypeMismatchError("unary minus requires a numeric operand")
        return dtype

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        return f"(-{self.operand.to_sql()})"


def _to_kleene(col_: Column) -> tuple[np.ndarray, np.ndarray]:
    """Split a BOOL column into (truth, known) arrays for 3-valued logic."""
    truth = col_.data.astype(bool, copy=False)
    known = col_.validity if col_.validity is not None else np.ones(len(col_), bool)
    return truth & known, known


def _from_kleene(truth: np.ndarray, known: np.ndarray) -> Column:
    validity = None if bool(known.all()) else known
    return column_from_parts(truth, DataType.BOOL, validity)


class And(Expression):
    """Kleene-logic conjunction."""

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right

    def evaluate(self, table: Table) -> Column:
        lt, lk = _to_kleene(self.left.evaluate(table))
        rt, rk = _to_kleene(self.right.evaluate(table))
        truth = lt & rt
        false_somewhere = (lk & ~lt) | (rk & ~rt)
        known = (lk & rk) | false_somewhere
        return _from_kleene(truth, known)

    def output_type(self, table: Table) -> DataType:
        return DataType.BOOL

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} AND {self.right.to_sql()})"


class Or(Expression):
    """Kleene-logic disjunction."""

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right

    def evaluate(self, table: Table) -> Column:
        lt, lk = _to_kleene(self.left.evaluate(table))
        rt, rk = _to_kleene(self.right.evaluate(table))
        truth = lt | rt
        known = (lk & rk) | lt | rt
        return _from_kleene(truth, known)

    def output_type(self, table: Table) -> DataType:
        return DataType.BOOL

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} OR {self.right.to_sql()})"


class Not(Expression):
    """Kleene-logic negation."""

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def evaluate(self, table: Table) -> Column:
        truth, known = _to_kleene(self.operand.evaluate(table))
        return _from_kleene(~truth & known, known)

    def output_type(self, table: Table) -> DataType:
        return DataType.BOOL

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        return f"(NOT {self.operand.to_sql()})"


class InList(Expression):
    """``expr IN (v1, v2, ...)`` membership test over literals/expressions."""

    def __init__(self, operand: Expression, options: list[Expression]) -> None:
        self.operand = operand
        self.options = options

    def evaluate(self, table: Table) -> Column:
        inner = self.operand.evaluate(table)
        result = np.zeros(len(inner), dtype=bool)
        for option in self.options:
            eq = Comparison("=", self.operand, option).evaluate(table)
            truth, _ = _to_kleene(eq)
            result |= truth
        validity = inner.validity
        return column_from_parts(result, DataType.BOOL, validity)

    def output_type(self, table: Table) -> DataType:
        return DataType.BOOL

    def referenced_columns(self) -> set[str]:
        refs = self.operand.referenced_columns()
        for option in self.options:
            refs |= option.referenced_columns()
        return refs

    def to_sql(self) -> str:
        opts = ", ".join(o.to_sql() for o in self.options)
        return f"({self.operand.to_sql()} IN ({opts}))"


class IsNull(Expression):
    """``expr IS [NOT] NULL`` — always yields a non-null boolean."""

    def __init__(self, operand: Expression, negated: bool) -> None:
        self.operand = operand
        self.negated = negated

    def evaluate(self, table: Table) -> Column:
        inner = self.operand.evaluate(table)
        nulls = inner.is_null_mask()
        result = ~nulls if self.negated else nulls
        return column_from_parts(result, DataType.BOOL, None)

    def output_type(self, table: Table) -> DataType:
        return DataType.BOOL

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {suffix})"


def truth_mask(predicate: Expression, table: Table) -> np.ndarray:
    """Rows of ``table`` where ``predicate`` is strictly TRUE.

    This implements the SQL WHERE rule: NULL predicate results drop the row.
    """
    result = predicate.evaluate(table)
    if result.dtype is not DataType.BOOL:
        raise TypeMismatchError(f"predicate must be boolean, got {result.dtype.name}")
    truth, known = _to_kleene(result)
    return truth & known


class Like(Expression):
    """SQL ``LIKE`` pattern matching (``%`` = any run, ``_`` = one char)."""

    def __init__(self, operand: Expression, pattern: str, negated: bool = False) -> None:
        import re

        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        escaped = re.escape(pattern)
        # re.escape may or may not escape % and _ depending on the Python
        # version; normalise, then translate the SQL wildcards
        escaped = escaped.replace(r"\%", "%").replace(r"\_", "_")
        escaped = escaped.replace("%", ".*").replace("_", ".")
        self._regex = re.compile(f"^{escaped}$", re.DOTALL)

    def evaluate(self, table: Table) -> Column:
        inner = self.operand.evaluate(table)
        if inner.dtype is not DataType.STRING:
            raise TypeMismatchError("LIKE requires a string operand")
        result = np.asarray(
            [
                bool(self._regex.match(v)) if v is not None else False
                for v in inner.to_list()
            ],
            dtype=bool,
        )
        if self.negated:
            result = ~result & ~inner.is_null_mask()
        return column_from_parts(result, DataType.BOOL, inner.validity)

    def output_type(self, table: Table) -> DataType:
        return DataType.BOOL

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        escaped = self.pattern.replace("'", "''")
        return f"({self.operand.to_sql()} {keyword} '{escaped}')"


def _fn_round(values: np.ndarray, digits: int = 0) -> np.ndarray:
    return np.round(values, digits)


#: Scalar function registry: name -> (apply, input kind, output kind).
#: Kinds: "numeric" or "string"; output "same" preserves the input type.
SCALAR_FUNCTIONS: dict[str, tuple[Callable[..., np.ndarray], str, str]] = {
    "ABS": (np.abs, "numeric", "same"),
    "SQRT": (np.sqrt, "numeric", "float"),
    "FLOOR": (np.floor, "numeric", "float"),
    "CEIL": (np.ceil, "numeric", "float"),
    "ROUND": (_fn_round, "numeric", "float"),
    "LN": (np.log, "numeric", "float"),
    "EXP": (np.exp, "numeric", "float"),
    "LENGTH": (None, "string", "int"),  # handled specially
    "UPPER": (None, "string", "string"),
    "LOWER": (None, "string", "string"),
}


class FunctionCall(Expression):
    """A scalar function call (see :data:`SCALAR_FUNCTIONS`)."""

    def __init__(self, name: str, arguments: list[Expression]) -> None:
        name = name.upper()
        if name not in SCALAR_FUNCTIONS:
            raise TypeMismatchError(f"unknown function {name!r}")
        self.name = name
        self.arguments = arguments

    def _check_arity(self) -> None:
        allowed = (1, 2) if self.name == "ROUND" else (1,)
        if len(self.arguments) not in allowed:
            raise TypeMismatchError(
                f"{self.name} expects {' or '.join(map(str, allowed))} "
                f"argument(s), got {len(self.arguments)}"
            )

    def evaluate(self, table: Table) -> Column:
        self._check_arity()
        inner = self.arguments[0].evaluate(table)
        fn, in_kind, out_kind = SCALAR_FUNCTIONS[self.name]
        if in_kind == "numeric":
            if not inner.dtype.is_numeric:
                raise TypeMismatchError(f"{self.name} requires a numeric argument")
            data = inner.data.astype(np.float64, copy=False)
            if self.name == "ROUND" and len(self.arguments) == 2:
                digits_col = self.arguments[1].evaluate(table)
                digits = int(digits_col[0]) if len(digits_col) else 0
                result = _fn_round(data, digits)
            else:
                with np.errstate(invalid="ignore", divide="ignore"):
                    result = fn(data)
            invalid = ~np.isfinite(result)
            validity = inner.validity
            if invalid.any():
                base = validity if validity is not None else np.ones(len(result), bool)
                validity = base & ~invalid
                result = np.where(invalid, 0.0, result)
            if out_kind == "same" and inner.dtype is DataType.INT64:
                return column_from_parts(
                    result.astype(np.int64), DataType.INT64, validity
                )
            return column_from_parts(result, DataType.FLOAT64, validity)
        # string functions
        if inner.dtype is not DataType.STRING:
            raise TypeMismatchError(f"{self.name} requires a string argument")
        values = inner.to_list()
        if self.name == "LENGTH":
            data = np.asarray([0 if v is None else len(v) for v in values], np.int64)
            return column_from_parts(data, DataType.INT64, inner.validity)
        transform = str.upper if self.name == "UPPER" else str.lower
        out = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            out[i] = None if v is None else transform(v)
        return column_from_parts(out, DataType.STRING, inner.validity)

    def output_type(self, table: Table) -> DataType:
        _, in_kind, out_kind = SCALAR_FUNCTIONS[self.name]
        if out_kind == "int":
            return DataType.INT64
        if out_kind == "string":
            return DataType.STRING
        if out_kind == "same":
            return self.arguments[0].output_type(table)
        return DataType.FLOAT64

    def referenced_columns(self) -> set[str]:
        refs: set[str] = set()
        for argument in self.arguments:
            refs |= argument.referenced_columns()
        return refs

    def to_sql(self) -> str:
        args = ", ".join(a.to_sql() for a in self.arguments)
        return f"{self.name}({args})"


class Case(Expression):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    def __init__(
        self,
        branches: list[tuple[Expression, Expression]],
        default: Expression | None = None,
    ) -> None:
        if not branches:
            raise TypeMismatchError("CASE needs at least one WHEN branch")
        self.branches = branches
        self.default = default

    def evaluate(self, table: Table) -> Column:
        n = table.num_rows
        value_columns = [value.evaluate(table) for _, value in self.branches]
        default_column = (
            self.default.evaluate(table) if self.default is not None else None
        )
        out_type = value_columns[0].dtype
        for column in value_columns[1:]:
            out_type = common_type(out_type, column.dtype)
        if default_column is not None:
            out_type = common_type(out_type, default_column.dtype)

        chosen = np.full(n, -1, dtype=np.int64)  # branch index; -1 = default
        remaining = np.ones(n, dtype=bool)
        for i, (condition, _) in enumerate(self.branches):
            mask = truth_mask(condition, table) & remaining
            chosen[mask] = i
            remaining &= ~mask

        values: list[Any] = [None] * n
        for row in range(n):
            branch = chosen[row]
            if branch >= 0:
                values[row] = value_columns[branch][row]
            elif default_column is not None:
                values[row] = default_column[row]
        return Column(values, dtype=out_type)

    def output_type(self, table: Table) -> DataType:
        out = self.branches[0][1].output_type(table)
        for _, value in self.branches[1:]:
            out = common_type(out, value.output_type(table))
        if self.default is not None:
            out = common_type(out, self.default.output_type(table))
        return out

    def referenced_columns(self) -> set[str]:
        refs: set[str] = set()
        for condition, value in self.branches:
            refs |= condition.referenced_columns() | value.referenced_columns()
        if self.default is not None:
            refs |= self.default.referenced_columns()
        return refs

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, value in self.branches:
            parts.append(f"WHEN {condition.to_sql()} THEN {value.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"


def fold_constant(expr: Expression) -> Any:
    """The Python value of a constant expression (no column references).

    Evaluates the expression against a one-row dummy table, so unary
    minus, arithmetic, comparisons and NULL all fold through the same
    kernels that would run at query time.  Callers must have checked
    ``referenced_columns()`` is empty; type errors (``-'a'``) surface as
    the usual :class:`~repro.errors.TypeMismatchError`.
    """
    if isinstance(expr, Literal):
        return expr.value
    dummy = Table([("__const__", Column(np.zeros(1, dtype=np.int64)))])
    return expr.evaluate(dummy)[0]
