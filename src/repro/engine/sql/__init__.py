"""SQL front end: lexer, parser, and statement AST.

The dialect is the subset needed by the exploration workloads in the paper:

- ``SELECT`` lists with expressions, aliases, ``*`` and aggregates
  (``COUNT/SUM/AVG/MIN/MAX``, plus ``COUNT(*)`` and ``COUNT(DISTINCT x)``)
- single-table ``FROM`` plus ``JOIN ... ON`` equi-joins
- ``WHERE`` with comparisons, ``AND/OR/NOT``, ``BETWEEN``, ``IN``,
  ``IS [NOT] NULL``
- ``GROUP BY`` / ``HAVING``
- ``ORDER BY ... [ASC|DESC]`` and ``LIMIT``
"""

from repro.engine.sql.ast import (
    AggregateCall,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
)
from repro.engine.sql.lexer import Token, TokenType, tokenize
from repro.engine.sql.parser import parse

__all__ = [
    "AggregateCall",
    "JoinClause",
    "OrderItem",
    "SelectItem",
    "SelectStatement",
    "Token",
    "TokenType",
    "tokenize",
    "parse",
]
