"""Statement-level AST for the SQL subset.

Scalar expressions reuse :mod:`repro.engine.expressions`; this module adds
the statement shell around them: select lists, joins, grouping, ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.expressions import Expression, strip_outer_parens

AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass
class AggregateCall:
    """An aggregate function call in a select list or HAVING clause.

    ``argument`` is None only for ``COUNT(*)``.
    """

    function: str
    argument: Expression | None
    distinct: bool = False

    def default_name(self) -> str:
        """Name used for the output column when no alias is given."""
        if self.argument is None:
            return "count_star"
        inner = strip_outer_parens(self.argument.to_sql()).replace(" ", "_")
        prefix = f"{self.function.lower()}_distinct" if self.distinct else self.function.lower()
        return f"{prefix}_{inner}"

    def to_sql(self) -> str:
        """Render back to SQL text."""
        if self.argument is None:
            return "COUNT(*)"
        inner = self.argument.to_sql()
        if self.distinct:
            return f"{self.function}(DISTINCT {inner})"
        return f"{self.function}({inner})"


@dataclass
class SelectItem:
    """One entry of a select list: an expression or aggregate plus alias.

    Exactly one of ``expression`` / ``aggregate`` is set, except for the
    ``*`` wildcard where both are None and ``star`` is True.
    """

    expression: Expression | None = None
    aggregate: AggregateCall | None = None
    alias: str | None = None
    star: bool = False

    def output_name(self) -> str:
        """Column name this item produces."""
        if self.alias:
            return self.alias
        if self.aggregate is not None:
            return self.aggregate.default_name()
        assert self.expression is not None
        return strip_outer_parens(self.expression.to_sql()).replace(" ", "_")

    def to_sql(self) -> str:
        """Render back to SQL text."""
        if self.star:
            return "*"
        body = self.aggregate.to_sql() if self.aggregate else self.expression.to_sql()  # type: ignore[union-attr]
        return f"{body} AS {self.alias}" if self.alias else body


@dataclass
class JoinClause:
    """``JOIN table ON left_col = right_col`` (equi-join only)."""

    table: str
    left_column: str
    right_column: str
    kind: str = "inner"  # "inner" | "left"

    def to_sql(self) -> str:
        """Render back to SQL text."""
        kw = "LEFT JOIN" if self.kind == "left" else "JOIN"
        return f"{kw} {self.table} ON {self.left_column} = {self.right_column}"


@dataclass
class OrderItem:
    """One ``ORDER BY`` key."""

    expression: Expression
    ascending: bool = True

    def to_sql(self) -> str:
        """Render back to SQL text."""
        return f"{self.expression.to_sql()} {'ASC' if self.ascending else 'DESC'}"


@dataclass
class SelectStatement:
    """A parsed SELECT statement."""

    items: list[SelectItem]
    table: str
    distinct: bool = False
    joins: list[JoinClause] = field(default_factory=list)
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    having_aggregates: list[tuple[str, AggregateCall]] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None

    @property
    def is_aggregate(self) -> bool:
        """True if the query computes aggregates (with or without GROUP BY)."""
        return bool(self.group_by) or any(item.aggregate for item in self.items)

    def aggregates(self) -> list[tuple[str, AggregateCall]]:
        """(output name, call) for every aggregate in the select list."""
        return [
            (item.output_name(), item.aggregate)
            for item in self.items
            if item.aggregate is not None
        ]

    def to_sql(self) -> str:
        """Render the statement back to SQL text."""
        keyword = "SELECT DISTINCT " if self.distinct else "SELECT "
        parts = [keyword + ", ".join(i.to_sql() for i in self.items), f"FROM {self.table}"]
        parts.extend(j.to_sql() for j in self.joins)
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(e.to_sql() for e in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having.to_sql()}")
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.to_sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


@dataclass
class CreateTableStatement:
    """``CREATE TABLE name (col TYPE, ...)``."""

    table: str
    columns: list[tuple[str, str]]  # (name, type word)

    def to_sql(self) -> str:
        """Render back to SQL text."""
        cols = ", ".join(f"{n} {t}" for n, t in self.columns)
        return f"CREATE TABLE {self.table} ({cols})"


@dataclass
class DropTableStatement:
    """``DROP TABLE name``."""

    table: str

    def to_sql(self) -> str:
        """Render back to SQL text."""
        return f"DROP TABLE {self.table}"


@dataclass
class InsertStatement:
    """``INSERT INTO name [(cols)] VALUES (...), (...)``."""

    table: str
    columns: list[str]  # empty = positional
    rows: list[list[Expression]]

    def to_sql(self) -> str:
        """Render back to SQL text."""
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        rows = ", ".join(
            "(" + ", ".join(v.to_sql() for v in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.table}{cols} VALUES {rows}"


@dataclass
class DeleteStatement:
    """``DELETE FROM name [WHERE ...]``."""

    table: str
    where: Expression | None = None

    def to_sql(self) -> str:
        """Render back to SQL text."""
        suffix = f" WHERE {self.where.to_sql()}" if self.where is not None else ""
        return f"DELETE FROM {self.table}{suffix}"


@dataclass
class UpdateStatement:
    """``UPDATE name SET col = expr, ... [WHERE ...]``."""

    table: str
    assignments: list[tuple[str, Expression]]
    where: Expression | None = None

    def to_sql(self) -> str:
        """Render back to SQL text."""
        sets = ", ".join(f"{c} = {e.to_sql()}" for c, e in self.assignments)
        suffix = f" WHERE {self.where.to_sql()}" if self.where is not None else ""
        return f"UPDATE {self.table} SET {sets}{suffix}"


@dataclass
class ExplainStatement:
    """``EXPLAIN [ANALYZE] <select>``.

    Plain EXPLAIN renders the plan; ANALYZE also executes it and reports
    per-node wall time, row counts and bytes touched.
    """

    statement: SelectStatement
    analyze: bool = False

    def to_sql(self) -> str:
        """Render back to SQL text."""
        keyword = "EXPLAIN ANALYZE" if self.analyze else "EXPLAIN"
        return f"{keyword} {self.statement.to_sql()}"


Statement = (
    SelectStatement
    | CreateTableStatement
    | DropTableStatement
    | InsertStatement
    | DeleteStatement
    | UpdateStatement
    | ExplainStatement
)
