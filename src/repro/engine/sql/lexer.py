"""A hand-written tokenizer for the engine's SQL subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import LexerError


class TokenType(enum.Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
        "AND", "OR", "NOT", "AS", "ASC", "DESC", "BETWEEN", "IN", "IS",
        "NULL", "TRUE", "FALSE", "JOIN", "INNER", "LEFT", "ON", "DISTINCT",
        "COUNT", "SUM", "AVG", "MIN", "MAX",
        "LIKE", "CASE", "WHEN", "THEN", "ELSE", "END",
        "INSERT", "INTO", "VALUES", "CREATE", "TABLE", "DELETE", "UPDATE",
        "SET", "DROP", "EXPLAIN", "ANALYZE",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = {"(", ")", ",", ".", ";"}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        type: token category.
        value: normalised token text (keywords upper-cased) or parsed value
            for numbers/strings.
        position: character offset in the source string.
    """

    type: TokenType
    value: Any
    position: int

    def matches(self, type_: TokenType, value: Any = None) -> bool:
        """True if the token has the given type (and value, when provided)."""
        if self.type is not type_:
            return False
        return value is None or self.value == value


def tokenize(sql: str) -> list[Token]:
    """Tokenize a SQL string.

    Returns the token list terminated by a single EOF token.

    Raises:
        LexerError: on characters outside the dialect.
    """
    return list(_tokens(sql))


def _tokens(sql: str) -> Iterator[Token]:
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token(TokenType.KEYWORD, upper, start)
            else:
                yield Token(TokenType.IDENTIFIER, word, start)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = sql[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i > start:
                    seen_exp = True
                    i += 1
                    if i < n and sql[i] in "+-":
                        i += 1
                else:
                    break
            text = sql[start:i]
            value: Any
            if seen_dot or seen_exp:
                value = float(text)
            else:
                value = int(text)
            yield Token(TokenType.NUMBER, value, start)
            continue
        if ch == "'":
            start = i
            i += 1
            parts: list[str] = []
            while True:
                if i >= n:
                    raise LexerError("unterminated string literal", start)
                if sql[i] == "'":
                    if i + 1 < n and sql[i + 1] == "'":
                        parts.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                parts.append(sql[i])
                i += 1
            yield Token(TokenType.STRING, "".join(parts), start)
            continue
        matched_op = next((op for op in _OPERATORS if sql.startswith(op, i)), None)
        if matched_op is not None:
            canonical = "<>" if matched_op == "!=" else matched_op
            yield Token(TokenType.OPERATOR, canonical, i)
            i += len(matched_op)
            continue
        if ch in _PUNCT:
            yield Token(TokenType.PUNCT, ch, i)
            i += 1
            continue
        raise LexerError(f"unexpected character {ch!r}", i)
    yield Token(TokenType.EOF, None, n)
