"""Recursive-descent parser for the engine's SQL subset.

Grammar sketch (precedence low → high)::

    statement   := SELECT select_list FROM identifier join* where?
                   group? having? order? limit?
    select_list := '*' | item (',' item)*
    item        := (aggregate | or_expr) (AS? identifier)?
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := additive ((cmp additive) | BETWEEN | IN | IS NULL)?
    additive    := multiplic (('+'|'-') multiplic)*
    multiplic   := unary (('*'|'/'|'%') unary)*
    unary       := '-' unary | primary
    primary     := literal | identifier ('.' identifier)? | '(' or_expr ')'

Aggregates inside HAVING are rewritten into references to synthetic
columns that the executor materialises alongside the group keys.
"""

from __future__ import annotations

from typing import Any

from repro.engine import expressions as ex
from repro.engine.sql.ast import (
    AGGREGATE_FUNCTIONS,
    AggregateCall,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
)
from repro.engine.sql.lexer import Token, TokenType, tokenize
from repro.errors import ParseError

_COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


def parse(sql: str) -> SelectStatement:
    """Parse a SELECT string into a :class:`SelectStatement`.

    Raises:
        ParseError: when the input does not match the dialect grammar.
        LexerError: on invalid characters.
    """
    parser = _Parser(tokenize(sql))
    statement = parser.parse_select()
    parser.expect_end()
    return statement


def parse_statement(sql: str):
    """Parse any supported statement (SELECT or DDL/DML).

    Returns one of the statement dataclasses in
    :mod:`repro.engine.sql.ast`.
    """
    parser = _Parser(tokenize(sql))
    statement = parser.parse_any()
    parser.expect_end()
    return statement


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._having_counter = 0

    # -- token plumbing ----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, type_: TokenType, value: Any = None) -> bool:
        return self._peek().matches(type_, value)

    def _accept(self, type_: TokenType, value: Any = None) -> Token | None:
        if self._check(type_, value):
            return self._advance()
        return None

    def _expect(self, type_: TokenType, value: Any = None) -> Token:
        token = self._peek()
        if not token.matches(type_, value):
            want = value if value is not None else type_.value
            raise ParseError(
                f"expected {want!r} but found {token.value!r} at position {token.position}"
            )
        return self._advance()

    def expect_end(self) -> None:
        """Require that all tokens (bar a trailing semicolon) were consumed."""
        self._accept(TokenType.PUNCT, ";")
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input {token.value!r} at position {token.position}"
            )

    # -- statement ----------------------------------------------------------------

    def parse_any(self):
        """Parse whichever supported statement kind comes next."""
        token = self._peek()
        if token.matches(TokenType.KEYWORD, "SELECT"):
            return self.parse_select()
        if token.matches(TokenType.KEYWORD, "CREATE"):
            return self._parse_create()
        if token.matches(TokenType.KEYWORD, "DROP"):
            return self._parse_drop()
        if token.matches(TokenType.KEYWORD, "INSERT"):
            return self._parse_insert()
        if token.matches(TokenType.KEYWORD, "DELETE"):
            return self._parse_delete()
        if token.matches(TokenType.KEYWORD, "UPDATE"):
            return self._parse_update()
        if token.matches(TokenType.KEYWORD, "EXPLAIN"):
            return self._parse_explain()
        raise ParseError(
            f"expected a statement but found {token.value!r} at position {token.position}"
        )

    def _parse_explain(self):
        from repro.engine.sql.ast import ExplainStatement

        self._expect(TokenType.KEYWORD, "EXPLAIN")
        analyze = bool(self._accept(TokenType.KEYWORD, "ANALYZE"))
        return ExplainStatement(statement=self.parse_select(), analyze=analyze)

    def _parse_create(self):
        from repro.engine.sql.ast import CreateTableStatement

        self._expect(TokenType.KEYWORD, "CREATE")
        self._expect(TokenType.KEYWORD, "TABLE")
        table = self._identifier("table name")
        self._expect(TokenType.PUNCT, "(")
        columns: list[tuple[str, str]] = []
        while True:
            name = self._identifier("column name")
            type_word = self._identifier("column type").upper()
            columns.append((name, type_word))
            if not self._accept(TokenType.PUNCT, ","):
                break
        self._expect(TokenType.PUNCT, ")")
        return CreateTableStatement(table=table, columns=columns)

    def _parse_drop(self):
        from repro.engine.sql.ast import DropTableStatement

        self._expect(TokenType.KEYWORD, "DROP")
        self._expect(TokenType.KEYWORD, "TABLE")
        return DropTableStatement(table=self._identifier("table name"))

    def _parse_insert(self):
        from repro.engine.sql.ast import InsertStatement

        self._expect(TokenType.KEYWORD, "INSERT")
        self._expect(TokenType.KEYWORD, "INTO")
        table = self._identifier("table name")
        columns: list[str] = []
        if self._accept(TokenType.PUNCT, "("):
            columns.append(self._identifier("column name"))
            while self._accept(TokenType.PUNCT, ","):
                columns.append(self._identifier("column name"))
            self._expect(TokenType.PUNCT, ")")
        self._expect(TokenType.KEYWORD, "VALUES")
        rows: list[list[ex.Expression]] = []
        while True:
            self._expect(TokenType.PUNCT, "(")
            row = [self._or_expr(allow_aggregates=False)]
            while self._accept(TokenType.PUNCT, ","):
                row.append(self._or_expr(allow_aggregates=False))
            self._expect(TokenType.PUNCT, ")")
            rows.append(row)
            if not self._accept(TokenType.PUNCT, ","):
                break
        return InsertStatement(table=table, columns=columns, rows=rows)

    def _parse_delete(self):
        from repro.engine.sql.ast import DeleteStatement

        self._expect(TokenType.KEYWORD, "DELETE")
        self._expect(TokenType.KEYWORD, "FROM")
        table = self._identifier("table name")
        where = None
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._or_expr(allow_aggregates=False)
        return DeleteStatement(table=table, where=where)

    def _parse_update(self):
        from repro.engine.sql.ast import UpdateStatement

        self._expect(TokenType.KEYWORD, "UPDATE")
        table = self._identifier("table name")
        self._expect(TokenType.KEYWORD, "SET")
        assignments: list[tuple[str, ex.Expression]] = []
        while True:
            column = self._identifier("column name")
            self._expect(TokenType.OPERATOR, "=")
            assignments.append((column, self._or_expr(allow_aggregates=False)))
            if not self._accept(TokenType.PUNCT, ","):
                break
        where = None
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._or_expr(allow_aggregates=False)
        return UpdateStatement(table=table, assignments=assignments, where=where)

    def parse_select(self) -> SelectStatement:
        """Parse a full SELECT statement."""
        self._expect(TokenType.KEYWORD, "SELECT")
        distinct = bool(self._accept(TokenType.KEYWORD, "DISTINCT"))
        items = self._select_list()
        self._expect(TokenType.KEYWORD, "FROM")
        table = self._identifier("table name")

        joins: list[JoinClause] = []
        while self._check(TokenType.KEYWORD, "JOIN") or self._check(
            TokenType.KEYWORD, "INNER"
        ) or self._check(TokenType.KEYWORD, "LEFT"):
            joins.append(self._join_clause())

        where = None
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._or_expr(allow_aggregates=False)

        group_by: list[ex.Expression] = []
        if self._accept(TokenType.KEYWORD, "GROUP"):
            self._expect(TokenType.KEYWORD, "BY")
            group_by.append(self._or_expr(allow_aggregates=False))
            while self._accept(TokenType.PUNCT, ","):
                group_by.append(self._or_expr(allow_aggregates=False))

        having = None
        having_aggregates: list[tuple[str, AggregateCall]] = []
        if self._accept(TokenType.KEYWORD, "HAVING"):
            self._having_sink = having_aggregates
            having = self._or_expr(allow_aggregates=True)
            del self._having_sink

        order_by: list[OrderItem] = []
        if self._accept(TokenType.KEYWORD, "ORDER"):
            self._expect(TokenType.KEYWORD, "BY")
            order_by.append(self._order_item())
            while self._accept(TokenType.PUNCT, ","):
                order_by.append(self._order_item())

        limit = None
        if self._accept(TokenType.KEYWORD, "LIMIT"):
            token = self._expect(TokenType.NUMBER)
            if not isinstance(token.value, int) or token.value < 0:
                raise ParseError(f"LIMIT must be a non-negative integer, got {token.value!r}")
            limit = token.value

        return SelectStatement(
            items=items,
            table=table,
            distinct=distinct,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            having_aggregates=having_aggregates,
            order_by=order_by,
            limit=limit,
        )

    def _identifier(self, what: str) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENTIFIER:
            raise ParseError(f"expected {what} at position {token.position}, got {token.value!r}")
        self._advance()
        return str(token.value)

    def _join_clause(self) -> JoinClause:
        kind = "inner"
        if self._accept(TokenType.KEYWORD, "LEFT"):
            kind = "left"
        else:
            self._accept(TokenType.KEYWORD, "INNER")
        self._expect(TokenType.KEYWORD, "JOIN")
        table = self._identifier("join table name")
        self._expect(TokenType.KEYWORD, "ON")
        left = self._qualified_name()
        self._expect(TokenType.OPERATOR, "=")
        right = self._qualified_name()
        return JoinClause(table=table, left_column=left, right_column=right, kind=kind)

    def _qualified_name(self) -> str:
        """``col`` or ``table.col``; the qualifier is kept as a dotted name."""
        first = self._identifier("column name")
        if self._accept(TokenType.PUNCT, "."):
            second = self._identifier("column name")
            return f"{first}.{second}"
        return first

    # -- select list -----------------------------------------------------------------

    def _select_list(self) -> list[SelectItem]:
        items = [self._select_item()]
        while self._accept(TokenType.PUNCT, ","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        if self._accept(TokenType.OPERATOR, "*"):
            return SelectItem(star=True)
        aggregate = self._maybe_aggregate()
        expression = None
        if aggregate is None:
            expression = self._or_expr(allow_aggregates=False)
        alias = None
        if self._accept(TokenType.KEYWORD, "AS"):
            alias = self._identifier("alias")
        elif self._check(TokenType.IDENTIFIER):
            alias = self._identifier("alias")
        return SelectItem(expression=expression, aggregate=aggregate, alias=alias)

    def _maybe_aggregate(self) -> AggregateCall | None:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in AGGREGATE_FUNCTIONS:
            if self._peek(1).matches(TokenType.PUNCT, "("):
                return self._aggregate_call()
        return None

    def _aggregate_call(self) -> AggregateCall:
        func = str(self._advance().value)
        self._expect(TokenType.PUNCT, "(")
        if func == "COUNT" and self._accept(TokenType.OPERATOR, "*"):
            self._expect(TokenType.PUNCT, ")")
            return AggregateCall(function="COUNT", argument=None)
        distinct = bool(self._accept(TokenType.KEYWORD, "DISTINCT"))
        argument = self._or_expr(allow_aggregates=False)
        self._expect(TokenType.PUNCT, ")")
        return AggregateCall(function=func, argument=argument, distinct=distinct)

    def _order_item(self) -> OrderItem:
        expression = self._or_expr(allow_aggregates=False)
        ascending = True
        if self._accept(TokenType.KEYWORD, "DESC"):
            ascending = False
        else:
            self._accept(TokenType.KEYWORD, "ASC")
        return OrderItem(expression=expression, ascending=ascending)

    # -- expressions --------------------------------------------------------------------

    def _or_expr(self, allow_aggregates: bool) -> ex.Expression:
        left = self._and_expr(allow_aggregates)
        while self._accept(TokenType.KEYWORD, "OR"):
            left = ex.Or(left, self._and_expr(allow_aggregates))
        return left

    def _and_expr(self, allow_aggregates: bool) -> ex.Expression:
        left = self._not_expr(allow_aggregates)
        while self._accept(TokenType.KEYWORD, "AND"):
            left = ex.And(left, self._not_expr(allow_aggregates))
        return left

    def _not_expr(self, allow_aggregates: bool) -> ex.Expression:
        if self._accept(TokenType.KEYWORD, "NOT"):
            return ex.Not(self._not_expr(allow_aggregates))
        return self._predicate(allow_aggregates)

    def _predicate(self, allow_aggregates: bool) -> ex.Expression:
        left = self._additive(allow_aggregates)
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
            op = str(self._advance().value)
            right = self._additive(allow_aggregates)
            return ex.Comparison(op, left, right)
        if token.matches(TokenType.KEYWORD, "BETWEEN"):
            self._advance()
            low = self._additive(allow_aggregates)
            self._expect(TokenType.KEYWORD, "AND")
            high = self._additive(allow_aggregates)
            return ex.And(ex.Comparison(">=", left, low), ex.Comparison("<=", left, high))
        if token.matches(TokenType.KEYWORD, "NOT") and self._peek(1).matches(
            TokenType.KEYWORD, "IN"
        ):
            self._advance()
            self._advance()
            return ex.Not(ex.InList(left, self._in_options(allow_aggregates)))
        if token.matches(TokenType.KEYWORD, "IN"):
            self._advance()
            return ex.InList(left, self._in_options(allow_aggregates))
        if token.matches(TokenType.KEYWORD, "NOT") and self._peek(1).matches(
            TokenType.KEYWORD, "LIKE"
        ):
            self._advance()
            self._advance()
            pattern = self._expect(TokenType.STRING)
            return ex.Like(left, str(pattern.value), negated=True)
        if token.matches(TokenType.KEYWORD, "LIKE"):
            self._advance()
            pattern = self._expect(TokenType.STRING)
            return ex.Like(left, str(pattern.value))
        if token.matches(TokenType.KEYWORD, "IS"):
            self._advance()
            negated = bool(self._accept(TokenType.KEYWORD, "NOT"))
            self._expect(TokenType.KEYWORD, "NULL")
            return ex.IsNull(left, negated=negated)
        return left

    def _in_options(self, allow_aggregates: bool) -> list[ex.Expression]:
        self._expect(TokenType.PUNCT, "(")
        options = [self._or_expr(allow_aggregates)]
        while self._accept(TokenType.PUNCT, ","):
            options.append(self._or_expr(allow_aggregates))
        self._expect(TokenType.PUNCT, ")")
        return options

    def _additive(self, allow_aggregates: bool) -> ex.Expression:
        left = self._multiplicative(allow_aggregates)
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-"):
                op = str(self._advance().value)
                left = ex.Arithmetic(op, left, self._multiplicative(allow_aggregates))
            else:
                return left

    def _multiplicative(self, allow_aggregates: bool) -> ex.Expression:
        left = self._unary(allow_aggregates)
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/", "%"):
                op = str(self._advance().value)
                left = ex.Arithmetic(op, left, self._unary(allow_aggregates))
            else:
                return left

    def _unary(self, allow_aggregates: bool) -> ex.Expression:
        if self._accept(TokenType.OPERATOR, "-"):
            return ex.Negate(self._unary(allow_aggregates))
        return self._primary(allow_aggregates)

    def _primary(self, allow_aggregates: bool) -> ex.Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return ex.Literal(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return ex.Literal(token.value)
        if token.matches(TokenType.KEYWORD, "NULL"):
            self._advance()
            return ex.Literal(None)
        if token.matches(TokenType.KEYWORD, "TRUE"):
            self._advance()
            return ex.Literal(True)
        if token.matches(TokenType.KEYWORD, "FALSE"):
            self._advance()
            return ex.Literal(False)
        if token.type is TokenType.KEYWORD and token.value in AGGREGATE_FUNCTIONS:
            if not allow_aggregates:
                raise ParseError(
                    f"aggregate {token.value} is not allowed here (position {token.position})"
                )
            call = self._aggregate_call()
            name = f"__having_{self._having_counter}"
            self._having_counter += 1
            self._having_sink.append((name, call))
            return ex.ColumnRef(name)
        if token.matches(TokenType.KEYWORD, "CASE"):
            return self._case_expression(allow_aggregates)
        if token.matches(TokenType.PUNCT, "("):
            self._advance()
            inner = self._or_expr(allow_aggregates)
            self._expect(TokenType.PUNCT, ")")
            return inner
        if token.type is TokenType.IDENTIFIER:
            if (
                self._peek(1).matches(TokenType.PUNCT, "(")
                and str(token.value).upper() in ex.SCALAR_FUNCTIONS
            ):
                return self._function_call(allow_aggregates)
            return ex.ColumnRef(self._qualified_name())
        raise ParseError(
            f"unexpected token {token.value!r} at position {token.position}"
        )

    def _function_call(self, allow_aggregates: bool) -> ex.Expression:
        name = str(self._advance().value)
        self._expect(TokenType.PUNCT, "(")
        arguments = [self._or_expr(allow_aggregates)]
        while self._accept(TokenType.PUNCT, ","):
            arguments.append(self._or_expr(allow_aggregates))
        self._expect(TokenType.PUNCT, ")")
        return ex.FunctionCall(name, arguments)

    def _case_expression(self, allow_aggregates: bool) -> ex.Expression:
        self._expect(TokenType.KEYWORD, "CASE")
        branches: list[tuple[ex.Expression, ex.Expression]] = []
        while self._accept(TokenType.KEYWORD, "WHEN"):
            condition = self._or_expr(allow_aggregates)
            self._expect(TokenType.KEYWORD, "THEN")
            value = self._or_expr(allow_aggregates)
            branches.append((condition, value))
        if not branches:
            raise ParseError("CASE needs at least one WHEN branch")
        default = None
        if self._accept(TokenType.KEYWORD, "ELSE"):
            default = self._or_expr(allow_aggregates)
        self._expect(TokenType.KEYWORD, "END")
        return ex.Case(branches, default)
