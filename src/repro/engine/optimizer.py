"""Rule-based logical plan optimizer.

Sits between :func:`~repro.engine.planner.plan_statement` and the
executor (gated by ``PRAGMA optimizer`` / ``REPRO_OPTIMIZER``, default
on).  The bound plan is already a rewrite-friendly algebra — scans with
residual predicates, join chains, filters, aggregates, projections — so
optimization is a fixpoint of rule passes over that tree followed by
three single-shot physical passes:

Fixpoint rules (iterated until no rule fires):

1. **constant folding / tautology & contradiction elimination** —
   literal-only boolean subtrees collapse (Kleene semantics; never to a
   bare NULL literal), conjuncts folded to TRUE are dropped, and a
   conjunct folded to FALSE marks the scan provably empty;
2. **redundant-conjunct dedup** — structurally identical conjuncts
   (via :meth:`~repro.engine.expressions.Expression.same_as`) evaluate
   once;
3. **predicate pushdown** — residual filter conjuncts over base-table
   columns move into the scan (where zone maps and dictionary filters
   see them), and conjuncts over a single inner join's right table move
   below that join, rewritten into the right table's own column names;
4. **probe merging** — every range conjunct on the probed column is
   intersected into the index probe (``_select_index`` picks only one),
   and a pushed range conjunct on an indexed column becomes a probe; an
   empty intersection marks the scan empty.

Single-shot passes (after the fixpoint):

5. **projection pruning** — scans and join right inputs materialise only
   referenced columns, guarded by a join-output naming simulation so the
   ``right_`` clash renames the binder assumed stay byte-identical;
6. **statistics-driven join reordering** — under a global
   order-insensitive aggregate (COUNT/MIN/MAX), join inputs are ordered
   by estimated expansion ``rows / NDV(key)`` from
   :mod:`repro.engine.statistics`;
7. **filter+aggregate fusion** — ``Aggregate -> Scan(filter)`` becomes a
   :class:`~repro.engine.planner.FusedAggregateNode`, whose executor
   pipeline evaluates the predicate and the partial aggregation morsel
   by morsel without materialising the filtered table.

Every rewrite preserves bit-identity with the unoptimized plan: NULL
literals are never folded away from predicate roots, conjuncts carrying
column references are never dropped (so dtype errors still surface),
empty scans type-check their predicate against an empty slice, pushdown
and fusion are row-local, and join reordering fires only where row
order is provably invisible.  Index probes are the one documented
exception: a merged probe issues a different index lookup, and adaptive
indexes answer range lookups in cracking order, which is already
implementation-defined (zone maps are disabled on probe scans for the
same reason).

**Termination.**  Rules 1–2 strictly shrink the predicate (expression
node count or conjunct count); rule 3 moves each conjunct at most once
(scan and join predicates are never lifted back into a filter); rule 4
strictly shrinks the scan's conjunct list.  The per-iteration measure
(total conjuncts not yet at their final site + total expression nodes)
is non-negative and strictly decreases whenever a rule fires, so the
fixpoint terminates; ``_MAX_PASSES`` is a belt-and-braces bound.

The rewrite trace lands in ``Plan.notes`` (rendered by ``EXPLAIN`` as
``note: optimizer: ...`` lines and carried into ``EXPLAIN ANALYZE``)
and in the ``optimizer.*`` metrics family.
"""

from __future__ import annotations

import copy
import operator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.engine import expressions as ex
from repro.engine.planner import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    FusedAggregateNode,
    JoinNode,
    LimitNode,
    Plan,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    _conjoin,
    extract_probe,
    intersect_probes,
    probe_is_empty,
    split_conjuncts,
)
from repro.obs.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.catalog import Database

_MAX_PASSES = 10

#: Aggregate functions whose value cannot depend on input row order
#: (exact, order-insensitive merges) — the join-reorder precondition.
_ORDER_INSENSITIVE = ("COUNT", "MIN", "MAX")

_MISSING = object()


@dataclass
class _Context:
    """Mutable state threaded through the rule passes of one plan."""

    database: "Database"
    notes: list[str] = field(default_factory=list)
    fired: set[str] = field(default_factory=set)
    changed: bool = False

    def record(self, rule: str, detail: str) -> None:
        self.changed = True
        self.fired.add(rule)
        self.notes.append(f"{rule}: {detail}")
        get_registry().counter(f"optimizer.{rule}").inc()


def optimize_plan(plan: Plan, database: "Database") -> Plan:
    """Rewrite ``plan`` in place through the rule passes; returns it."""
    registry = get_registry()
    registry.counter("optimizer.runs").inc()
    ctx = _Context(database=database)
    for _ in range(_MAX_PASSES):
        ctx.changed = False
        plan.root = _fold_pass(plan.root, ctx)
        plan.root = _pushdown_pass(plan.root, ctx)
        _probe_pass(plan.root, ctx)
        if not ctx.changed:
            break
    _prune_pass(plan.root, None, ctx)
    _reorder_pass(plan, ctx)
    plan.root = _fuse_pass(plan.root, ctx)
    if ctx.fired:
        registry.counter("optimizer.rewrites").inc(len(ctx.notes))
    plan.notes.extend(f"optimizer: {note}" for note in ctx.notes)
    return plan


# -- expression helpers ------------------------------------------------------------------


def _iter_children(expr: ex.Expression) -> Iterator[ex.Expression]:
    """Every direct sub-expression, across all expression shapes."""
    for attr in ("left", "right", "operand"):
        child = getattr(expr, attr, None)
        if isinstance(child, ex.Expression):
            yield child
    for attr in ("options", "arguments"):
        seq = getattr(expr, attr, None)
        if seq:
            yield from (item for item in seq if isinstance(item, ex.Expression))
    branches = getattr(expr, "branches", None)
    if branches:
        for condition, value in branches:
            yield condition
            yield value
    default = getattr(expr, "default", None)
    if isinstance(default, ex.Expression):
        yield default


def _column_refs(expr: ex.Expression) -> Iterator[ex.ColumnRef]:
    if isinstance(expr, ex.ColumnRef):
        yield expr
    for child in _iter_children(expr):
        yield from _column_refs(child)


def _literal_truth(expr: ex.Expression) -> Any:
    """True/False/None for boolean-or-NULL literals, ``_MISSING`` otherwise."""
    if isinstance(expr, ex.Literal):
        if expr.value is None or isinstance(expr.value, bool):
            return expr.value
    return _MISSING


_COMPARE = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _fold_comparison(expr: ex.Comparison) -> ex.Literal | None:
    """A literal-vs-literal comparison folded to TRUE/FALSE, else None.

    Mixed string/numeric operands and boolean ordering are left alone:
    they raise type errors at runtime, and folding would hide them.
    NULL operands are never folded (the comparison yields NULL, and a
    bare NULL literal is not a valid predicate root).
    """
    left, right = expr.left, expr.right
    if not (isinstance(left, ex.Literal) and isinstance(right, ex.Literal)):
        return None
    lv, rv = left.value, right.value
    if lv is None or rv is None:
        return None
    if isinstance(lv, bool) or isinstance(rv, bool):
        if not (isinstance(lv, bool) and isinstance(rv, bool)):
            return None
        if expr.op not in ("=", "<>"):
            return None
    elif isinstance(lv, str) != isinstance(rv, str):
        return None
    return ex.Literal(bool(_COMPARE[expr.op](lv, rv)))


def _fold(expr: ex.Expression) -> tuple[ex.Expression, bool]:
    """Collapse literal-only boolean subtrees (Kleene semantics).

    A node folds only when its operands are themselves literals, so no
    column-referencing subtree is ever dropped — whatever the original
    predicate would have evaluated (and whatever dtype errors it would
    have raised) still evaluates.  Results are always strict TRUE/FALSE
    literals; an unknown (NULL) outcome keeps the original node.
    """
    if isinstance(expr, (ex.And, ex.Or)):
        left, left_changed = _fold(expr.left)
        right, right_changed = _fold(expr.right)
        changed = left_changed or right_changed
        lt, rt = _literal_truth(left), _literal_truth(right)
        if lt is not _MISSING and rt is not _MISSING:
            if isinstance(expr, ex.And):
                value = (
                    False
                    if lt is False or rt is False
                    else (True if lt is True and rt is True else None)
                )
            else:
                value = (
                    True
                    if lt is True or rt is True
                    else (False if lt is False and rt is False else None)
                )
            if value is not None:
                return ex.Literal(value), True
        if changed:
            return type(expr)(left, right), True
        return expr, False
    if isinstance(expr, ex.Not):
        inner, changed = _fold(expr.operand)
        truth = _literal_truth(inner)
        if truth is True or truth is False:
            return ex.Literal(not truth), True
        if changed:
            return ex.Not(inner), True
        return expr, False
    if isinstance(expr, ex.Comparison):
        folded = _fold_comparison(expr)
        if folded is not None:
            return folded, True
    return expr, False


def _simplify_predicate(
    predicate: ex.Expression,
) -> tuple[ex.Expression | None, bool, bool, str]:
    """``(new_predicate, changed, contradiction, detail)`` for one predicate.

    Folds each conjunct, drops TRUE conjuncts and duplicates, and flags a
    FALSE conjunct as a contradiction (the literal is *kept* so the
    predicate still evaluates where it must).  Bails out untouched when a
    conjunct is a bare NULL literal — dropping its TRUE siblings could
    leave a non-boolean predicate root the unoptimized plan never had.
    """
    conjuncts = split_conjuncts(predicate)
    folded_conjuncts: list[ex.Expression] = []
    folded = 0
    for conj in conjuncts:
        new, changed = _fold(conj)
        folded += int(changed)
        folded_conjuncts.append(new)
    if any(
        isinstance(c, ex.Literal) and c.value is None for c in folded_conjuncts
    ):
        return predicate, False, False, ""
    kept: list[ex.Expression] = []
    dropped_true = dropped_dup = 0
    contradiction = False
    for conj in folded_conjuncts:
        if _literal_truth(conj) is True:
            dropped_true += 1
            continue
        if _literal_truth(conj) is False:
            contradiction = True
        if any(conj.same_as(seen) for seen in kept):
            dropped_dup += 1
            continue
        kept.append(conj)
    changed = bool(folded or dropped_true or dropped_dup)
    parts = []
    if folded:
        parts.append(f"{folded} folded")
    if dropped_true:
        parts.append(f"{dropped_true} tautology dropped")
    if dropped_dup:
        parts.append(f"{dropped_dup} duplicate dropped")
    return _conjoin(kept), changed, contradiction, ", ".join(parts)


# -- rule 1+2: constant folding, tautology/contradiction, dedup --------------------------


def _fold_pass(node: PlanNode, ctx: _Context) -> PlanNode:
    child = getattr(node, "child", None)
    if child is not None:
        node.child = _fold_pass(child, ctx)
    if isinstance(node, ScanNode) and node.predicate is not None and not node.empty:
        new, changed, contradiction, detail = _simplify_predicate(node.predicate)
        if changed:
            node.predicate = new
            ctx.record("constant_fold", f"scan({node.table}): {detail}")
        if contradiction:
            # keep the (simplified) predicate: the executor type-checks it
            # against an empty slice so dtype errors still surface
            node.empty = True
            ctx.record("contradiction", f"scan({node.table}) is provably empty")
    elif isinstance(node, FilterNode):
        new, changed, _, detail = _simplify_predicate(node.predicate)
        if changed:
            ctx.record("constant_fold", f"filter: {detail}")
            if new is None:
                return node.child
            node.predicate = new
    elif isinstance(node, JoinNode) and node.right_predicate is not None:
        new, changed, _, detail = _simplify_predicate(node.right_predicate)
        if changed:
            node.right_predicate = new
            ctx.record("constant_fold", f"join({node.clause.table}): {detail}")
    return node


# -- rule 3: predicate pushdown ----------------------------------------------------------


def _simulate_chain(
    base_names: list[str],
    joins: list[JoinNode],
    database: "Database",
    right_names_per_join: list[list[str]] | None = None,
) -> tuple[dict[str, tuple[Any, str]], list[dict[str, str]]]:
    """Replay the executor's join-output naming over a join chain.

    Returns ``(producers, maps)``: ``producers`` maps every output column
    name to ``("base", name)`` or ``(join_index, original_right_name)``;
    ``maps[j]`` maps join ``j``'s right-table column names to their
    output names (the ``right_`` clash renaming of ``hash_join``).
    """
    used = set(base_names)
    producers: dict[str, tuple[Any, str]] = {
        name: ("base", name) for name in base_names
    }
    maps: list[dict[str, str]] = []
    for j, join in enumerate(joins):
        if right_names_per_join is not None:
            right_names = right_names_per_join[j]
        elif join.right_columns is not None:
            right_names = join.right_columns
        else:
            right_names = list(database.main_table(join.clause.table).column_names)
        mapping: dict[str, str] = {}
        for name in right_names:
            out = name
            while out in used:
                out = f"right_{out}"
            used.add(out)
            mapping[name] = out
            producers[out] = (j, name)
        maps.append(mapping)
    return producers, maps


def _join_chain(node: PlanNode) -> tuple[list[JoinNode], ScanNode] | None:
    """``(joins bottom-up, scan)`` when ``node`` heads a join chain."""
    joins: list[JoinNode] = []
    cursor = node
    while isinstance(cursor, JoinNode):
        joins.append(cursor)
        cursor = cursor.child
    if not joins or not isinstance(cursor, ScanNode):
        return None
    joins.reverse()
    return joins, cursor


def _rename_into_right(expr: ex.Expression, inverse: dict[str, str]) -> ex.Expression:
    """A copy of ``expr`` with join-output names mapped back to the right
    table's own column names (the statement keeps its bound originals)."""
    clone = copy.deepcopy(expr)
    for ref in _column_refs(clone):
        ref.name = inverse[ref.name]
    return clone


def _pushdown_pass(node: PlanNode, ctx: _Context) -> PlanNode:
    child = getattr(node, "child", None)
    if child is not None:
        node.child = _pushdown_pass(child, ctx)
    if not (isinstance(node, FilterNode) and isinstance(node.child, JoinNode)):
        return node
    chain = _join_chain(node.child)
    if chain is None:
        return node
    joins, scan = chain
    base_names = list(ctx.database.main_table(scan.table).column_names)
    producers, maps = _simulate_chain(base_names, joins, ctx.database)
    remaining: list[ex.Expression] = []
    to_scan = 0
    to_join = 0
    for conj in split_conjuncts(node.predicate):
        refs = conj.referenced_columns()
        resolved = [producers.get(name, _MISSING) for name in refs]
        if _MISSING in resolved:
            remaining.append(conj)
            continue
        owners = {owner for owner, _ in resolved}
        if not refs or owners == {"base"}:
            # base-only (or constant) conjuncts are row-local on the scan
            scan.predicate = _conjoin(split_conjuncts(scan.predicate) + [conj]) if (
                scan.predicate is not None
            ) else conj
            to_scan += 1
            continue
        if len(owners) == 1:
            j = next(iter(owners))
            if joins[j].clause.kind == "inner":
                # a right-side filter below a LEFT join would drop padded
                # rows the residual filter keeps; inner joins only
                inverse = {out: orig for orig, out in maps[j].items()}
                pushed = _rename_into_right(conj, inverse)
                join = joins[j]
                join.right_predicate = (
                    pushed
                    if join.right_predicate is None
                    else ex.And(join.right_predicate, pushed)
                )
                to_join += 1
                continue
        remaining.append(conj)
    if not (to_scan or to_join):
        return node
    parts = []
    if to_scan:
        parts.append(f"{to_scan} conjunct(s) to scan({scan.table})")
    if to_join:
        parts.append(f"{to_join} conjunct(s) below join")
    ctx.record("pushdown", ", ".join(parts))
    if not remaining:
        return node.child
    node.predicate = _conjoin(remaining)
    return node


# -- rule 4: probe merging ---------------------------------------------------------------


def _probe_pass(node: PlanNode, ctx: _Context) -> None:
    for child in node.children():
        _probe_pass(child, ctx)
    if not isinstance(node, ScanNode) or node.empty or node.predicate is None:
        return
    original = split_conjuncts(node.predicate)
    probe = node.probe
    remaining: list[ex.Expression] = []
    merged = 0
    for conj in original:
        candidate = extract_probe(conj)
        if candidate is not None:
            if probe is None and ctx.database.index_for(
                node.table, candidate.column
            ) is not None:
                probe = candidate
                merged += 1
                continue
            if probe is not None and candidate.column == probe.column:
                tightened = intersect_probes(probe, candidate)
                if tightened is not None:
                    probe = tightened
                    merged += 1
                    continue
        remaining.append(conj)
    if not merged or probe is None:
        return
    if probe_is_empty(probe):
        # contradictory range: the scan is empty; keep the full predicate
        # (and drop the probe) so dtype errors still type-check
        node.empty = True
        node.probe = None
        node.predicate = _conjoin(original)
        ctx.record(
            "contradiction",
            f"scan({node.table}): probe {probe.describe()} is empty",
        )
        return
    node.probe = probe
    node.predicate = _conjoin(remaining)
    ctx.record(
        "probe_merge",
        f"scan({node.table}): {merged} conjunct(s) into {probe.describe()}",
    )


# -- rule 5: projection pruning ----------------------------------------------------------


def _item_refs(items) -> set[str] | None:
    """Columns a select-item list reads; None when ``*`` needs everything."""
    refs: set[str] = set()
    for item in items:
        if item.star:
            return None
        if item.expression is not None:
            refs |= item.expression.referenced_columns()
        if item.aggregate is not None and item.aggregate.argument is not None:
            refs |= item.aggregate.argument.referenced_columns()
    return refs


def _prune_pass(node: PlanNode, needed: set[str] | None, ctx: _Context) -> None:
    """Thread required-column sets down the tree and prune scans/joins."""
    if isinstance(node, (LimitNode, DistinctNode)):
        _prune_pass(node.child, needed, ctx)
    elif isinstance(node, SortNode):
        if needed is not None:
            needed = set(needed)
            for item in node.order_by:
                needed |= item.expression.referenced_columns()
        _prune_pass(node.child, needed, ctx)
    elif isinstance(node, ProjectNode):
        _prune_pass(node.child, _item_refs(node.items), ctx)
    elif isinstance(node, AggregateNode):  # includes FusedAggregateNode
        refs: set[str] = set()
        for expr in node.group_exprs:
            refs |= expr.referenced_columns()
        for _, call in node.aggregates:
            if call.argument is not None:
                refs |= call.argument.referenced_columns()
        _prune_pass(node.child, refs, ctx)
    elif isinstance(node, FilterNode):
        if needed is not None:
            needed = set(needed) | node.predicate.referenced_columns()
        _prune_pass(node.child, needed, ctx)
    elif isinstance(node, JoinNode):
        _prune_join_chain(node, needed, ctx)
    elif isinstance(node, ScanNode):
        _prune_scan(node, needed, ctx)


def _prune_scan(scan: ScanNode, needed: set[str] | None, ctx: _Context) -> None:
    if needed is None or scan.columns is not None:
        return
    names = list(ctx.database.main_table(scan.table).column_names)
    required = set(needed)
    if scan.predicate is not None:
        required |= scan.predicate.referenced_columns()
    keep = [name for name in names if name in required]
    if not keep:
        keep = names[:1]  # row count must survive even a column-free scan
    if len(keep) == len(names):
        return
    scan.columns = keep
    ctx.record(
        "prune", f"scan({scan.table}): {len(keep)} of {len(names)} column(s)"
    )


def _prune_join_chain(
    top: JoinNode, needed: set[str] | None, ctx: _Context
) -> None:
    if needed is None:
        return
    chain = _join_chain(top)
    if chain is None:
        return
    joins, scan = chain
    if scan.columns is not None or any(j.right_columns is not None for j in joins):
        return
    database = ctx.database
    base_names = list(database.main_table(scan.table).column_names)
    _, full_maps = _simulate_chain(base_names, joins, database)

    # walk the chain top-down, peeling each join's outputs off the
    # required set and collecting which right-table columns survive
    need = set(needed)
    right_keeps: list[list[str]] = [[] for _ in joins]
    for j in range(len(joins) - 1, -1, -1):
        join = joins[j]
        mapping = full_maps[j]
        required_orig = {
            orig for orig, out in mapping.items() if out in need
        } | {join.clause.right_column}
        if join.right_predicate is not None:
            required_orig |= join.right_predicate.referenced_columns()
        order = (
            join.right_columns
            if join.right_columns is not None
            else list(database.main_table(join.clause.table).column_names)
        )
        right_keeps[j] = [name for name in order if name in required_orig]
        need = (need - set(mapping.values())) | {join.clause.left_column}

    scan_required = set(need)
    if scan.predicate is not None:
        scan_required |= scan.predicate.referenced_columns()
    scan_keep = [name for name in base_names if name in scan_required]
    if not scan_keep:
        scan_keep = base_names[:1]

    # naming guard: the binder resolved clash renames against the full
    # schemas; pruning must not change any kept column's output name
    _, pruned_maps = _simulate_chain(
        scan_keep, joins, database, right_names_per_join=right_keeps
    )
    for j, keep in enumerate(right_keeps):
        for orig in keep:
            if pruned_maps[j][orig] != full_maps[j][orig]:
                return
    pruned_sites = 0
    if len(scan_keep) < len(base_names):
        scan.columns = scan_keep
        pruned_sites += 1
    for j, join in enumerate(joins):
        full = (
            len(database.main_table(join.clause.table).column_names)
        )
        if len(right_keeps[j]) < full:
            join.right_columns = right_keeps[j]
            pruned_sites += 1
    if pruned_sites:
        ctx.record("prune", f"{pruned_sites} input(s) pruned under join chain")


# -- rule 6: statistics-driven join reordering -------------------------------------------


def _reorder_pass(plan: Plan, ctx: _Context) -> None:
    """Order join inputs by estimated expansion where row order is invisible.

    Join output order is observable almost everywhere (projections emit
    it, DISTINCT and GROUP BY keep first appearances, sorts break ties
    stably, float SUM/AVG round in input order), so reordering fires
    only under a global COUNT/MIN/MAX aggregate — the one shape whose
    result provably cannot depend on input row order.
    """
    node: PlanNode = plan.root
    while isinstance(node, (ProjectNode, SortNode, LimitNode, DistinctNode)) or (
        isinstance(node, FilterNode) and not isinstance(node.child, JoinNode)
    ):
        node = node.child
    if not isinstance(node, AggregateNode) or isinstance(node, FusedAggregateNode):
        return
    if node.group_exprs:
        return
    if any(call.function not in _ORDER_INSENSITIVE for _, call in node.aggregates):
        return
    parent: PlanNode = node
    below = node.child
    if isinstance(below, FilterNode):
        parent = below
        below = below.child
    chain = _join_chain(below)
    if chain is None or len(chain[0]) < 2:
        return
    joins, scan = chain
    database = ctx.database
    base_names = set(database.main_table(scan.table).column_names)
    if any(
        join.clause.kind != "inner" or join.clause.left_column not in base_names
        for join in joins
    ):
        return

    def expansion(join: JoinNode) -> float:
        stats = database.statistics(join.clause.table)
        column = stats.column(join.clause.right_column)
        if column is None or column.distinct_count == 0:
            return float(stats.row_count)
        return stats.row_count / column.distinct_count

    ranked = sorted(range(len(joins)), key=lambda i: (expansion(joins[i]), i))
    if ranked == list(range(len(joins))):
        return
    reordered = [joins[i] for i in ranked]
    # naming guard: every join must produce the same clash renames in
    # the new order, else bound references upstream go stale
    _, original_maps = _simulate_chain(
        sorted(base_names), joins, database
    )
    _, new_maps = _simulate_chain(sorted(base_names), reordered, database)
    new_position = {id(join): pos for pos, join in enumerate(reordered)}
    for j, join in enumerate(joins):
        if original_maps[j] != new_maps[new_position[id(join)]]:
            return
    cursor: PlanNode = scan
    for join in reordered:
        join.child = cursor
        cursor = join
    parent.child = cursor  # type: ignore[attr-defined]
    order = ", ".join(join.clause.table for join in reordered)
    ctx.record("join_reorder", f"by estimated expansion: {order}")


# -- rule 7: filter+aggregate fusion -----------------------------------------------------


def _fuse_pass(node: PlanNode, ctx: _Context) -> PlanNode:
    child = getattr(node, "child", None)
    if child is not None:
        node.child = _fuse_pass(child, ctx)
    if (
        isinstance(node, AggregateNode)
        and not isinstance(node, FusedAggregateNode)
        and isinstance(node.child, ScanNode)
        and node.child.predicate is not None
        and node.child.probe is None
        and not node.child.empty
    ):
        ctx.record("fuse", f"filter+aggregate over scan({node.child.table})")
        return FusedAggregateNode(
            child=node.child,
            group_exprs=node.group_exprs,
            group_names=node.group_names,
            aggregates=node.aggregates,
        )
    return node
