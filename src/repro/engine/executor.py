"""Plan execution: walks the logical plan bottom-up over in-memory tables.

Execution has two modes sharing one dispatch: the default mode runs the
plan with no measurement overhead at all, while passing a
:class:`~repro.obs.profile.PlanProfiler` brackets every node with
wall-time, row-count and byte accounting — the substrate of ``EXPLAIN
ANALYZE``.

Orthogonally, the data-parallel operators (filter, scan predicates,
hash aggregation, sort) route through the morsel-driven worker pool of
:mod:`repro.engine.parallel` whenever it is enabled (``PRAGMA
threads=N`` / ``REPRO_THREADS``) and the input is large enough; small
inputs always take the serial path.  Serial and parallel execution are
bit-identical by construction (see the parallel module docstring).

Execution is *governed*: when a :class:`~repro.resilience.QueryContext`
is active, every plan node is a checkpoint — the deadline/cancellation
token is checked before the node runs, and the node's output bytes are
charged against the memory budget after.  The parallel module adds the
finer-grained morsel-boundary checkpoints between nodes.
"""

from __future__ import annotations

import numpy as np

from repro.engine import operators as ops
from repro.engine import parallel, scanopt, shards, zonemap
from repro.engine.expressions import truth_mask
from repro.engine.planner import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    FusedAggregateNode,
    JoinNode,
    LimitNode,
    Plan,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.engine.table import Table
from repro.errors import ExecutionError
from repro.obs.metrics import get_registry
from repro.obs.profile import PlanProfiler, table_nbytes
from repro.resilience import current_context
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.catalog import Database


def execute_plan(
    plan: Plan, database: "Database", profiler: PlanProfiler | None = None
) -> Table:
    """Execute a logical plan and return the result table.

    Args:
        plan: the logical plan to run.
        database: catalog resolving table and index references.
        profiler: when given, every node's wall time, input/output row
            counts and bytes touched are recorded into it.
    """
    return _execute(plan.root, database, profiler)


def _execute(
    node: PlanNode, database: "Database", profiler: PlanProfiler | None = None
) -> Table:
    context = current_context()
    if context is not None:
        context.check()
    if profiler is None:
        result = _run_node(node, database, None)
    else:
        profiler.enter(node)
        result = _run_node(node, database, profiler)
        profiler.exit(node, result)
    if context is not None and context.memory_budget_bytes is not None:
        context.charge(table_nbytes(result), node.label())
    return result


def _note_fanout(profiler: PlanProfiler | None, num_rows: int) -> None:
    """Record the morsel fan-out of a parallel operator on the profiler."""
    if profiler is not None:
        profiler.annotate(
            f"parallel: {parallel.morsel_count(num_rows)} morsels "
            f"x {parallel.get_threads()} threads"
        )


def _run_node(
    node: PlanNode, database: "Database", profiler: PlanProfiler | None
) -> Table:
    if isinstance(node, ScanNode):
        return _execute_scan(node, database, profiler)
    if isinstance(node, JoinNode):
        left = _execute(node.child, database, profiler)
        right = database.get_table(node.clause.table)
        if profiler is not None:
            profiler.note_input(right.num_rows, table_nbytes(right))
        if node.right_predicate is not None:
            if parallel.should_parallelize(right.num_rows):
                _note_fanout(profiler, right.num_rows)
                right = right.filter(
                    parallel.parallel_truth_mask(node.right_predicate, right)
                )
            else:
                right = right.filter(truth_mask(node.right_predicate, right))
        if node.right_columns is not None:
            right = right.select(node.right_columns)
        return ops.hash_join(
            left,
            right,
            node.clause.left_column,
            node.clause.right_column,
            kind=node.clause.kind,
        )
    if isinstance(node, FilterNode):
        child = _execute(node.child, database, profiler)
        if parallel.should_parallelize(child.num_rows):
            _note_fanout(profiler, child.num_rows)
            return parallel.parallel_filter(child, node.predicate)
        return ops.filter_table(child, node.predicate)
    if isinstance(node, FusedAggregateNode):
        return _execute_fused_aggregate(node, database, profiler)
    if isinstance(node, AggregateNode):
        child = _execute(node.child, database, profiler)
        if parallel.should_parallelize(child.num_rows):
            _note_fanout(profiler, child.num_rows)
            return parallel.parallel_hash_aggregate(
                child, node.group_exprs, node.aggregates, node.group_names
            )
        return ops.hash_aggregate(
            child, node.group_exprs, node.aggregates, node.group_names
        )
    if isinstance(node, ProjectNode):
        return ops.project(_execute(node.child, database, profiler), node.items)
    if isinstance(node, DistinctNode):
        return ops.distinct(_execute(node.child, database, profiler))
    if isinstance(node, SortNode):
        child = _execute(node.child, database, profiler)
        scan = node.child
        if (
            isinstance(scan, ScanNode)
            and scan.predicate is None
            and scan.probe is None
            and not scan.empty
            and database.delta_store_if_dirty(scan.table) is None
        ):
            layout = database.shard_layout(scan.table)
            if layout is not None:
                scattered = shards.scatter_sort(
                    scan.table, child, node.order_by, layout, database, profiler
                )
                if scattered is not None:
                    return scattered
        if parallel.should_parallelize(child.num_rows):
            _note_fanout(profiler, child.num_rows)
            return parallel.parallel_sort(child, node.order_by)
        return ops.sort_table(child, node.order_by)
    if isinstance(node, LimitNode):
        return ops.limit(_execute(node.child, database, profiler), node.count)
    raise ExecutionError(f"unknown plan node {type(node).__name__}")


def _scan_predicate_mask(
    node: ScanNode, table: Table, database: "Database", profiler: PlanProfiler | None
) -> np.ndarray:
    """Truth mask of the scan predicate over ``table`` (the columnar main
    or a probe result), routed through the zone-map and parallel fast
    paths under the usual gating."""
    assert node.predicate is not None
    config = scanopt.get_config()
    if (
        node.probe is None  # index probes re-order rows; zones would misalign
        and config.zone_rows > 0
        and table.num_rows > config.zone_rows
    ):
        zones = database.zone_map(node.table)
        mask, pruned, passed, num_zones = zonemap.pruned_truth_mask(
            node.predicate, table, zones
        )
        registry = get_registry()
        registry.counter("scan.zones_pruned").inc(pruned)
        registry.counter("scan.zones_passed").inc(passed)
        if profiler is not None and num_zones:
            profiler.annotate(
                f"zones: {pruned} pruned, {passed} passed of {num_zones}"
            )
        return mask
    if parallel.should_parallelize(table.num_rows):
        _note_fanout(profiler, table.num_rows)
        return parallel.parallel_truth_mask(node.predicate, table)
    return truth_mask(node.predicate, table)


def _ranges_nbytes(table: Table, ranges) -> int:
    """Upper bound on bytes the streamed ranges can fault in from disk.

    Counts the per-row footprint of the *mapped* columns only (payload +
    validity + dictionary codes; the dictionary itself is RAM-resident)
    times the rows inside non-FAIL ranges — the pages a streamed scan
    may touch.  Skipped zones contribute nothing, which is the point.
    """
    rows = sum(stop - start for start, stop, _evaluate in ranges)
    per_row = 0
    for name in table.column_names:
        column = table.column(name)
        if not column.is_mapped:
            continue
        per_row += column.data.dtype.itemsize
        if column.validity is not None:
            per_row += column.validity.dtype.itemsize
        if column.dictionary() is not None:
            per_row += 4  # int32 codes
    return rows * per_row


def _streamed_scan(
    node: ScanNode,
    table: Table,
    database: "Database",
    profiler: PlanProfiler | None,
    live_mask: np.ndarray | None = None,
) -> Table | None:
    """I/O-level pruned scan over a memory-mapped table, or None.

    When the scan qualifies for zone pruning *and* the table is backed
    by mapped checkpoint files, the zone map is consulted before any
    morsel is sliced: FAIL zones are never read at all (their pages are
    never faulted in) and the surviving zone-aligned ranges stream
    through :func:`parallel.streamed_filter`.  Returns None when the
    usual mask path should run instead.
    """
    assert node.predicate is not None
    config = scanopt.get_config()
    if (
        node.probe is not None  # index probes re-order rows; zones would misalign
        or config.zone_rows <= 0
        or table.num_rows <= config.zone_rows
        or not table.is_mapped
    ):
        return None
    zones = database.zone_map(node.table)
    if zones.row_count != table.num_rows:
        return None
    # Type errors are dtype-dependent, not data-dependent: surface them
    # exactly as the unpruned path would even when every zone is skipped.
    truth_mask(node.predicate, table.slice(0, 0))
    ranges, pruned, passed, num_zones = zonemap.classify_ranges(node.predicate, zones)
    read = _ranges_nbytes(table, ranges)
    registry = get_registry()
    registry.counter("scan.zones_pruned").inc(pruned)
    registry.counter("scan.zones_passed").inc(passed)
    registry.counter("io.zones_skipped_io").inc(pruned)
    registry.counter("io.morsels_streamed").inc(len(ranges))
    registry.counter("io.bytes_read").inc(read)
    if profiler is not None and num_zones:
        profiler.annotate(
            f"zones: {pruned} pruned, {passed} passed of {num_zones}"
        )
        profiler.annotate(
            f"io: {read} bytes read, {pruned} zones skipped, "
            f"{len(ranges)} morsels streamed"
        )
    eval_rows = sum(stop - start for start, stop, evaluate in ranges if evaluate)
    if len(ranges) > 1 and parallel.should_parallelize(eval_rows):
        _note_fanout(profiler, eval_rows)
    return parallel.streamed_filter(
        table, node.predicate, ranges, extra_mask=live_mask
    )


def _execute_scan(
    node: ScanNode, database: "Database", profiler: PlanProfiler | None
) -> Table:
    store = database.delta_store_if_dirty(node.table)
    if store is not None:
        return _scan_with_delta(node, store, database, profiler)
    table = database.get_table(node.table)
    if profiler is not None:
        profiler.note_input(table.num_rows, table_nbytes(table))
    if node.columns is not None:
        table = table.select(node.columns)
    if node.empty:
        # provably contradictory predicate: no rows, but dtype errors the
        # unoptimized filter would raise must still surface
        if node.predicate is not None:
            truth_mask(node.predicate, table.slice(0, 0))
        return table.slice(0, 0)
    if node.probe is not None:
        index = database.index_for(node.table, node.probe.column)
        if index is None:
            raise ExecutionError(
                f"plan expected an index on {node.table}.{node.probe.column}"
            )
        positions = index.lookup_range(
            node.probe.low,
            node.probe.high,
            node.probe.low_inclusive,
            node.probe.high_inclusive,
        )
        table = table.take(np.asarray(positions, dtype=np.int64))
    if node.predicate is not None:
        if node.probe is None:
            layout = database.shard_layout(node.table)
            if layout is not None:
                scattered = shards.scatter_filter(
                    node.table, table, node.predicate, layout, database, profiler
                )
                if scattered is not None:
                    return scattered
        streamed = _streamed_scan(node, table, database, profiler)
        if streamed is not None:
            return streamed
        table = table.filter(_scan_predicate_mask(node, table, database, profiler))
    return table


def _scan_with_delta(
    node: ScanNode,
    store,
    database: "Database",
    profiler: PlanProfiler | None,
) -> Table:
    """Scan a table with pending writes: the columnar main keeps every
    fast path (zone maps over main positions, tombstones ANDed in after
    the predicate), and the live delta rows ride along as a trailing
    morsel evaluated directly — it is bounded by the merge threshold.
    """
    main = database.main_table(node.table)
    tail = database.delta_tail(node.table)
    if profiler is not None:
        profiler.note_input(
            main.num_rows + store.live_delta_count(),
            table_nbytes(main) + table_nbytes(tail),
        )
        profiler.annotate(
            f"delta: {store.live_delta_count()} pending rows, "
            f"{store.main_tombstones} tombstones"
        )
    if node.columns is not None:
        main = main.select(node.columns)
        tail = tail.select(node.columns)
    if node.empty:
        if node.predicate is not None:
            truth_mask(node.predicate, main.slice(0, 0))
        return main.slice(0, 0)
    live_main = store.live_main_mask()
    live_delta = store.live_delta_mask()
    if node.probe is not None:
        index = database.index_for(node.table, node.probe.column)
        if index is None:
            raise ExecutionError(
                f"plan expected an index on {node.table}.{node.probe.column}"
            )
        positions = np.asarray(
            index.lookup_range(
                node.probe.low,
                node.probe.high,
                node.probe.low_inclusive,
                node.probe.high_inclusive,
            ),
            dtype=np.int64,
        )
        # logical ids: [0, main rows) in the main, the rest in the delta
        n_main = main.num_rows
        in_main = positions < n_main
        main_positions = positions[in_main]
        tail_positions = positions[~in_main] - n_main
        tail_positions = tail_positions[tail_positions < tail.num_rows]
        if live_main is not None:
            main_positions = main_positions[live_main[main_positions]]
        if live_delta is not None:
            tail_positions = tail_positions[live_delta[tail_positions]]
        part = main.take(main_positions).concat(tail.take(tail_positions))
        if node.predicate is not None:
            if parallel.should_parallelize(part.num_rows):
                _note_fanout(profiler, part.num_rows)
                mask = parallel.parallel_truth_mask(node.predicate, part)
            else:
                mask = truth_mask(node.predicate, part)
            part = part.filter(mask)
        return part
    if node.predicate is not None:
        main_part = _streamed_scan(node, main, database, profiler, live_mask=live_main)
        if main_part is None:
            mask = _scan_predicate_mask(node, main, database, profiler)
            if live_main is not None:
                mask &= live_main
            main_part = main.filter(mask)
    else:
        main_part = main if live_main is None else main.filter(live_main)
    tail_part = tail if live_delta is None else tail.filter(live_delta)
    if node.predicate is not None and tail_part.num_rows:
        tail_part = tail_part.filter(truth_mask(node.predicate, tail_part))
    return main_part.concat(tail_part)


def _execute_fused_aggregate(
    node: FusedAggregateNode, database: "Database", profiler: PlanProfiler | None
) -> Table:
    """Run the fused filter+aggregate pipeline over the node's base scan.

    The scan predicate and the partial aggregation are evaluated morsel
    by morsel without materialising the filtered table in between; the
    zone map (same gating as the plain scan path) contributes the
    FAIL/PASS/MAYBE range classification.
    """
    scan = node.child
    assert isinstance(scan, ScanNode) and scan.predicate is not None
    store = database.delta_store_if_dirty(scan.table)
    if store is not None and store.main_tombstones > 0:
        # tombstones in the main would misalign the fused zone ranges;
        # fall back to scan-then-aggregate (still delta-aware)
        filtered = _scan_with_delta(scan, store, database, profiler)
        if parallel.should_parallelize(filtered.num_rows):
            _note_fanout(profiler, filtered.num_rows)
            return parallel.parallel_hash_aggregate(
                filtered, node.group_exprs, node.aggregates, node.group_names
            )
        return ops.hash_aggregate(
            filtered, node.group_exprs, node.aggregates, node.group_names
        )
    # with at most appended rows pending, the effective table is the raw
    # main plus the live tail — main zone ranges stay aligned and the
    # tail becomes one always-evaluate trailing range
    table = database.get_table(scan.table)
    main_rows = database.main_table(scan.table).num_rows if store is not None else table.num_rows
    if profiler is not None:
        profiler.note_input(table.num_rows, table_nbytes(table))
        if store is not None:
            profiler.annotate(f"delta: {table.num_rows - main_rows} pending rows")
    if scan.columns is not None:
        table = table.select(scan.columns)
    config = scanopt.get_config()
    ranges = None
    if config.zone_rows > 0 and main_rows > config.zone_rows:
        zones = database.zone_map(scan.table)
        ranges, pruned, passed, num_zones = zonemap.classify_ranges(
            scan.predicate, zones
        )
        if table.num_rows > main_rows:
            ranges.append((main_rows, table.num_rows, True))
        registry = get_registry()
        registry.counter("scan.zones_pruned").inc(pruned)
        registry.counter("scan.zones_passed").inc(passed)
        if table.is_mapped:
            # the fused kernel only slices the listed ranges, so on a
            # mapped table the pruning is an I/O-level skip too
            read = _ranges_nbytes(table, ranges)
            registry.counter("io.zones_skipped_io").inc(pruned)
            registry.counter("io.morsels_streamed").inc(len(ranges))
            registry.counter("io.bytes_read").inc(read)
            if profiler is not None and num_zones:
                profiler.annotate(
                    f"io: {read} bytes read, {pruned} zones skipped, "
                    f"{len(ranges)} morsels streamed"
                )
        if profiler is not None and num_zones:
            profiler.annotate(
                f"zones: {pruned} pruned, {passed} passed of {num_zones}"
            )
    if store is None and scan.probe is None:
        layout = database.shard_layout(scan.table)
        if layout is not None:
            scattered = shards.scatter_fused_aggregate(
                scan.table,
                table,
                scan.predicate,
                node.group_exprs,
                node.aggregates,
                node.group_names,
                ranges,
                layout,
                database,
                profiler,
            )
            if scattered is not None:
                # same kernel shape, scattered one task per shard
                if profiler is not None:
                    profiler.annotate(
                        "fused: filter + partial aggregate per morsel"
                    )
                return scattered
    if profiler is not None:
        profiler.annotate("fused: filter + partial aggregate per morsel")
    if parallel.should_parallelize(table.num_rows):
        _note_fanout(profiler, table.num_rows)
    return parallel.fused_filter_aggregate(
        table,
        scan.predicate,
        node.group_exprs,
        node.aggregates,
        node.group_names,
        ranges=ranges,
    )
