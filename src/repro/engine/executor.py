"""Plan execution: walks the logical plan bottom-up over in-memory tables."""

from __future__ import annotations

import numpy as np

from repro.engine import operators as ops
from repro.engine.expressions import truth_mask
from repro.engine.planner import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    Plan,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.engine.table import Table
from repro.errors import ExecutionError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.catalog import Database


def execute_plan(plan: Plan, database: "Database") -> Table:
    """Execute a logical plan and return the result table."""
    return _execute(plan.root, database)


def _execute(node: PlanNode, database: "Database") -> Table:
    if isinstance(node, ScanNode):
        return _execute_scan(node, database)
    if isinstance(node, JoinNode):
        left = _execute(node.child, database)
        right = database.get_table(node.clause.table)
        return ops.hash_join(
            left,
            right,
            node.clause.left_column,
            node.clause.right_column,
            kind=node.clause.kind,
        )
    if isinstance(node, FilterNode):
        return ops.filter_table(_execute(node.child, database), node.predicate)
    if isinstance(node, AggregateNode):
        child = _execute(node.child, database)
        return ops.hash_aggregate(
            child, node.group_exprs, node.aggregates, node.group_names
        )
    if isinstance(node, ProjectNode):
        return ops.project(_execute(node.child, database), node.items)
    if isinstance(node, DistinctNode):
        child = _execute(node.child, database)
        seen: set[tuple] = set()
        keep: list[int] = []
        for i, row in enumerate(child.rows()):
            if row not in seen:
                seen.add(row)
                keep.append(i)
        return child.take(np.asarray(keep, dtype=np.int64))
    if isinstance(node, SortNode):
        return ops.sort_table(_execute(node.child, database), node.order_by)
    if isinstance(node, LimitNode):
        return ops.limit(_execute(node.child, database), node.count)
    raise ExecutionError(f"unknown plan node {type(node).__name__}")


def _execute_scan(node: ScanNode, database: "Database") -> Table:
    table = database.get_table(node.table)
    if node.probe is not None:
        index = database.index_for(node.table, node.probe.column)
        if index is None:
            raise ExecutionError(
                f"plan expected an index on {node.table}.{node.probe.column}"
            )
        positions = index.lookup_range(
            node.probe.low,
            node.probe.high,
            node.probe.low_inclusive,
            node.probe.high_inclusive,
        )
        table = table.take(np.asarray(positions, dtype=np.int64))
    if node.predicate is not None:
        table = table.filter(truth_mask(node.predicate, table))
    return table
