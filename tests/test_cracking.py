"""Unit and property tests for database cracking and its variants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexing import (
    CrackerIndex,
    CrackingVariant,
    HybridCrackSortIndex,
    ScanIndex,
    SortedIndex,
    UpdatableCrackerIndex,
)


def brute_force(values: np.ndarray, low, high, low_inc=True, high_inc=True) -> set[int]:
    mask = np.ones(len(values), dtype=bool)
    if low is not None:
        mask &= values >= low if low_inc else values > low
    if high is not None:
        mask &= values <= high if high_inc else values < high
    return set(np.flatnonzero(mask).tolist())


@pytest.fixture()
def values() -> np.ndarray:
    return np.random.default_rng(7).integers(0, 1000, size=500)


class TestCrackerIndex:
    def test_single_range(self, values):
        index = CrackerIndex(values)
        got = set(index.lookup_range(100, 200).tolist())
        assert got == brute_force(values, 100, 200)

    def test_exclusive_bounds(self, values):
        index = CrackerIndex(values)
        got = set(index.lookup_range(100, 200, False, False).tolist())
        assert got == brute_force(values, 100, 200, False, False)

    def test_open_ranges(self, values):
        index = CrackerIndex(values)
        assert set(index.lookup_range(None, 50).tolist()) == brute_force(values, None, 50)
        assert set(index.lookup_range(950, None).tolist()) == brute_force(values, 950, None)
        assert set(index.lookup_range(None, None).tolist()) == set(range(len(values)))

    def test_repeated_queries_stay_correct(self, values):
        index = CrackerIndex(values)
        rng = np.random.default_rng(1)
        for _ in range(50):
            low = int(rng.integers(0, 900))
            high = low + int(rng.integers(1, 100))
            got = set(index.lookup_range(low, high).tolist())
            assert got == brute_force(values, low, high)
            assert index.is_consistent()

    def test_work_decreases_over_time(self):
        data = np.random.default_rng(3).integers(0, 1_000_000, size=50_000)
        index = CrackerIndex(data)
        costs = []
        rng = np.random.default_rng(4)
        for _ in range(60):
            low = int(rng.integers(0, 990_000))
            before = index.work_touched
            index.lookup_range(low, low + 10_000)
            costs.append(index.work_touched - before)
        early = float(np.mean(costs[:5]))
        late = float(np.mean(costs[-10:]))
        assert late < early / 3

    def test_num_pieces_grows(self, values):
        index = CrackerIndex(values)
        assert index.num_pieces == 1
        index.lookup_range(100, 200)
        assert index.num_pieces >= 2

    def test_empty_range(self, values):
        index = CrackerIndex(values)
        assert len(index.lookup_range(500, 500, False, False)) == 0

    def test_range_outside_domain(self, values):
        index = CrackerIndex(values)
        assert len(index.lookup_range(2000, 3000)) == 0
        assert len(index.lookup_range(-10, -1)) == 0

    @pytest.mark.parametrize("variant", list(CrackingVariant))
    def test_variants_all_correct(self, values, variant):
        index = CrackerIndex(values, variant=variant, random_crack_threshold=64)
        rng = np.random.default_rng(9)
        for _ in range(30):
            low = int(rng.integers(0, 900))
            high = low + int(rng.integers(1, 150))
            got = set(index.lookup_range(low, high).tolist())
            assert got == brute_force(values, low, high)
        assert index.is_consistent()

    def test_stochastic_beats_standard_on_sequential(self):
        data = np.random.default_rng(5).integers(0, 1_000_000, size=40_000)
        standard = CrackerIndex(data.copy(), variant="standard")
        stochastic = CrackerIndex(
            data.copy(), variant="stochastic", random_crack_threshold=1024
        )
        width = 5_000
        for start in range(0, 800_000, width):
            standard.lookup_range(start, start + width)
            stochastic.lookup_range(start, start + width)
        assert stochastic.work_touched < standard.work_touched

    def test_duplicate_heavy_data(self):
        data = np.random.default_rng(2).integers(0, 5, size=1000)
        index = CrackerIndex(data)
        for low in range(5):
            got = set(index.lookup_range(low, low).tolist())
            assert got == brute_force(data, low, low)
        assert index.is_consistent()

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.lists(st.integers(-100, 100), min_size=1, max_size=120),
        queries=st.lists(
            st.tuples(st.integers(-120, 120), st.integers(0, 60)),
            min_size=1,
            max_size=12,
        ),
    )
    def test_property_matches_brute_force(self, data, queries):
        arr = np.asarray(data, dtype=np.int64)
        index = CrackerIndex(arr, variant="stochastic", random_crack_threshold=8)
        for low, width in queries:
            got = set(index.lookup_range(low, low + width).tolist())
            assert got == brute_force(arr, low, low + width)
            assert index.is_consistent()


class TestBaselines:
    def test_sorted_index_correct(self, values):
        index = SortedIndex(values)
        assert set(index.lookup_range(250, 400).tolist()) == brute_force(values, 250, 400)

    def test_sorted_index_lazy_build(self, values):
        index = SortedIndex(values, lazy=True)
        assert not index.is_built
        index.lookup_range(0, 10)
        assert index.is_built

    def test_scan_index_correct(self, values):
        index = ScanIndex(values)
        assert set(index.lookup_range(250, 400, False, True).tolist()) == brute_force(
            values, 250, 400, False, True
        )

    def test_scan_cost_is_flat(self, values):
        index = ScanIndex(values)
        index.lookup_range(0, 10)
        first = index.work_touched
        index.lookup_range(500, 510)
        assert index.work_touched == 2 * first


class TestHybrid:
    @pytest.mark.parametrize("flavour", ["crack", "sort"])
    def test_correct(self, values, flavour):
        index = HybridCrackSortIndex(values, num_partitions=8, flavour=flavour)
        rng = np.random.default_rng(11)
        for _ in range(25):
            low = int(rng.integers(0, 900))
            high = low + int(rng.integers(1, 120))
            got = set(index.lookup_range(low, high).tolist())
            assert got == brute_force(values, low, high)

    def test_repeated_range_gets_cheap(self, values):
        index = HybridCrackSortIndex(values, num_partitions=8)
        index.lookup_range(100, 300)
        mid = index.work_touched
        index.lookup_range(150, 250)  # fully covered by the merged range
        second = index.work_touched - mid
        assert second < mid / 2


class TestUpdatableCracker:
    def test_insert_visible_after_merge(self, values):
        index = UpdatableCrackerIndex(values)
        index.lookup_range(0, 1000)  # crack a bit first
        new_id = index.insert(123)
        got = set(index.lookup_range(120, 130).tolist())
        expected = brute_force(values, 120, 130) | {new_id}
        assert got == expected

    def test_delete_hides_rows(self, values):
        index = UpdatableCrackerIndex(values)
        target = int(np.flatnonzero(values == values[0])[0])
        index.delete(target)
        got = set(index.lookup_range(None, None).tolist())
        assert target not in got
        assert len(got) == len(values) - 1

    def test_out_of_range_updates_cost_nothing_extra(self, values):
        index = UpdatableCrackerIndex(values)
        index.lookup_range(100, 200)
        for value in range(900, 950):
            index.insert(value)
        merges_before = index.merges_performed
        index.lookup_range(100, 200)
        assert index.merges_performed == merges_before  # nothing merged
        assert index.pending_count == 50

    def test_interleaved_workload_correct(self):
        rng = np.random.default_rng(21)
        data = rng.integers(0, 1000, size=300)
        index = UpdatableCrackerIndex(data)
        shadow = {i: int(v) for i, v in enumerate(data)}
        for step in range(80):
            action = rng.random()
            if action < 0.3:
                value = int(rng.integers(0, 1000))
                new_id = index.insert(value)
                shadow[new_id] = value
            elif action < 0.4 and shadow:
                victim = int(rng.choice(list(shadow)))
                index.delete(victim)
                del shadow[victim]
            else:
                low = int(rng.integers(0, 900))
                high = low + int(rng.integers(1, 120))
                got = set(index.lookup_range(low, high).tolist())
                expected = {i for i, v in shadow.items() if low <= v <= high}
                assert got == expected
                assert index.is_consistent()

    @settings(max_examples=25, deadline=None)
    @given(
        initial=st.lists(st.integers(0, 50), min_size=1, max_size=40),
        operations=st.lists(
            st.one_of(
                st.tuples(st.just("insert"), st.integers(0, 50)),
                st.tuples(st.just("delete"), st.integers(0, 60)),
                st.tuples(st.just("query"), st.integers(0, 50)),
            ),
            max_size=25,
        ),
    )
    def test_property_insert_delete_query(self, initial, operations):
        arr = np.asarray(initial, dtype=np.int64)
        index = UpdatableCrackerIndex(arr)
        shadow = {i: int(v) for i, v in enumerate(arr)}
        for kind, value in operations:
            if kind == "insert":
                shadow[index.insert(value)] = value
            elif kind == "delete":
                # delete by ordinal position into the live shadow, so the
                # generator needs no knowledge of assigned row ids
                if shadow:
                    victim = sorted(shadow)[value % len(shadow)]
                    index.delete(victim)
                    del shadow[victim]
            else:
                got = set(index.lookup_range(value, value + 10).tolist())
                expected = {i for i, v in shadow.items() if value <= v <= value + 10}
                assert got == expected
                assert index.is_consistent()
