"""Differential testing for joins plus engine edge cases.

Joins are checked against a naive nested-loop reference; edge cases cover
empty tables, all-null columns and single-row inputs through every
operator path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Database, Table
from repro.engine.column import Column
from repro.engine.types import DataType

WORDS = ["red", "green", "blue"]


def nested_loop_join(left_rows, right_rows, left_key, right_key, kind="inner"):
    out = []
    for left in left_rows:
        matched = False
        for right in right_rows:
            lv, rv = left[left_key], right[right_key]
            if lv is not None and lv == rv:
                matched = True
                merged = dict(left)
                for name, value in right.items():
                    merged[name if name not in left else f"right_{name}"] = value
                out.append(merged)
        if kind == "left" and not matched:
            merged = dict(left)
            for name in right_rows[0] if right_rows else []:
                merged[name if name not in left else f"right_{name}"] = None
            out.append(merged)
    return out


def random_pair(rng: np.random.Generator):
    n_left = int(rng.integers(1, 40))
    n_right = int(rng.integers(1, 30))
    left_rows = [
        {
            "lid": i,
            "k": int(rng.integers(0, 8)) if rng.random() > 0.1 else None,
            "v": round(float(rng.uniform(0, 10)), 2),
        }
        for i in range(n_left)
    ]
    right_rows = [
        {
            "rid": i,
            "k": int(rng.integers(0, 8)),
            "label": str(rng.choice(WORDS)),
        }
        for i in range(n_right)
    ]
    return left_rows, right_rows


@pytest.mark.parametrize("seed", range(15))
@pytest.mark.parametrize("kind", ["inner", "left"])
def test_join_differential(seed: int, kind: str) -> None:
    rng = np.random.default_rng(seed)
    left_rows, right_rows = random_pair(rng)
    db = Database()
    db.create_table(
        "l",
        {
            "lid": [r["lid"] for r in left_rows],
            "k": [r["k"] for r in left_rows],
            "v": [r["v"] for r in left_rows],
        },
    )
    db.create_table(
        "r",
        {
            "rid": [r["rid"] for r in right_rows],
            "k": [r["k"] for r in right_rows],
            "label": [r["label"] for r in right_rows],
        },
    )
    keyword = "LEFT JOIN" if kind == "left" else "JOIN"
    sql = (
        f"SELECT lid, v, rid, label FROM l {keyword} r ON l.k = r.k "
        "ORDER BY lid, rid"
    )
    got = [tuple(row) for row in db.sql(sql).rows()]
    expected_rows = nested_loop_join(left_rows, right_rows, "k", "k", kind)
    expected = sorted(
        (r["lid"], r["v"], r.get("rid"), r.get("label")) for r in expected_rows
    )
    assert sorted(got, key=lambda t: tuple((x is None, x) for x in t)) == sorted(
        expected, key=lambda t: tuple((x is None, x) for x in t)
    )


@pytest.mark.parametrize("seed", range(8))
def test_join_then_aggregate_differential(seed: int) -> None:
    rng = np.random.default_rng(100 + seed)
    left_rows, right_rows = random_pair(rng)
    db = Database()
    db.create_table(
        "l",
        {
            "lid": [r["lid"] for r in left_rows],
            "k": [r["k"] for r in left_rows],
            "v": [r["v"] for r in left_rows],
        },
    )
    db.create_table(
        "r",
        {
            "rid": [r["rid"] for r in right_rows],
            "k": [r["k"] for r in right_rows],
            "label": [r["label"] for r in right_rows],
        },
    )
    sql = (
        "SELECT label, COUNT(*) AS n, SUM(v) AS sv FROM l "
        "JOIN r ON l.k = r.k GROUP BY label ORDER BY label"
    )
    got = {row[0]: (row[1], round(row[2], 6)) for row in db.sql(sql).rows()}
    joined = nested_loop_join(left_rows, right_rows, "k", "k")
    expected: dict = {}
    for row in joined:
        n, sv = expected.get(row["label"], (0, 0.0))
        expected[row["label"]] = (n + 1, sv + row["v"])
    expected = {k: (n, round(sv, 6)) for k, (n, sv) in expected.items()}
    assert got == expected


class TestEdgeCases:
    def test_empty_table_through_all_operators(self):
        db = Database()
        db.execute("CREATE TABLE e (a INT, b FLOAT, s TEXT)")
        assert db.sql("SELECT * FROM e").num_rows == 0
        assert db.sql("SELECT a + 1 AS x FROM e WHERE a > 0").num_rows == 0
        assert db.sql("SELECT COUNT(*) AS n, SUM(a) AS s FROM e").to_dicts() == [
            {"n": 0, "s": None}
        ]
        assert db.sql("SELECT s, COUNT(*) AS n FROM e GROUP BY s").num_rows == 0
        assert db.sql("SELECT DISTINCT a FROM e ORDER BY a LIMIT 5").num_rows == 0

    def test_empty_join_sides(self):
        db = Database()
        db.execute("CREATE TABLE a (k INT)")
        db.create_table("b", {"k": [1, 2], "x": ["u", "v"]})
        assert db.sql("SELECT * FROM a JOIN b ON a.k = b.k").num_rows == 0
        assert db.sql("SELECT * FROM b LEFT JOIN a ON b.k = a.k").num_rows == 2

    def test_all_null_column(self):
        db = Database()
        db.create_table("t", Table([("a", Column([None, None, None], dtype=DataType.FLOAT64)),
                                    ("id", Column([1, 2, 3]))]))
        assert db.sql("SELECT AVG(a) AS m FROM t").to_dicts() == [{"m": None}]
        assert db.sql("SELECT id FROM t WHERE a > 0").num_rows == 0
        assert db.sql("SELECT id FROM t WHERE a IS NULL").num_rows == 3
        ordered = db.sql("SELECT id FROM t ORDER BY a, id")
        assert ordered.column("id").to_list() == [1, 2, 3]

    def test_single_row(self):
        db = Database()
        db.create_table("t", {"a": [7], "s": ["only"]})
        assert db.sql("SELECT a * 2 AS d FROM t").to_dicts() == [{"d": 14}]
        assert db.sql("SELECT s, COUNT(*) AS n FROM t GROUP BY s").to_dicts() == [
            {"s": "only", "n": 1}
        ]

    def test_limit_zero(self):
        db = Database()
        db.create_table("t", {"a": [1, 2, 3]})
        assert db.sql("SELECT a FROM t LIMIT 0").num_rows == 0

    def test_group_by_null_keys(self):
        db = Database()
        db.create_table("t", {"s": ["x", None, "x", None], "v": [1, 2, 3, 4]})
        result = db.sql("SELECT s, SUM(v) AS sv FROM t GROUP BY s")
        got = {row[0]: row[1] for row in result.rows()}
        assert got == {"x": 4, None: 6}

    def test_order_by_descending_nulls(self):
        db = Database()
        db.create_table("t", {"a": [2, None, 1], "id": [0, 1, 2]})
        result = db.sql("SELECT id FROM t ORDER BY a DESC")
        # nulls rank lowest, so DESC puts them last
        assert result.column("id").to_list() == [0, 2, 1]

    def test_duplicate_aggregates(self):
        db = Database()
        db.create_table("t", {"a": [1, 2, 3]})
        result = db.sql("SELECT SUM(a) AS x, SUM(a) AS y FROM t")
        assert result.to_dicts() == [{"x": 6, "y": 6}]
