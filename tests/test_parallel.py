"""Tests for morsel-driven parallel execution (repro.engine.parallel).

The load-bearing guarantee is that serial and parallel execution are
**bit-identical**: the property-style corpus test below replays the SQL
differential-test corpus in both modes and compares raw column payloads
byte for byte, not just normalised values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Database, Table
from repro.engine import parallel
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.profile import PlanProfiler
from repro.obs.tracing import get_tracer
from tests.test_sql_differential import random_query, random_table


@pytest.fixture()
def parallel_mode():
    """Force the parallel path (tiny morsels, no serial fallback)."""
    parallel.configure(threads=4, morsel_rows=7, min_parallel_rows=1)
    yield parallel.get_config()
    parallel.configure(threads=0, morsel_rows=parallel.DEFAULT_MORSEL_ROWS)
    parallel.shutdown_pool()


@pytest.fixture()
def serial_mode():
    parallel.configure(threads=0)
    yield
    parallel.configure(threads=0, morsel_rows=parallel.DEFAULT_MORSEL_ROWS)


def tables_bit_identical(a: Table, b: Table) -> None:
    """Assert schema, validity and raw payload bytes all match."""
    assert a.column_names == b.column_names
    assert a.schema.types == b.schema.types
    assert a.num_rows == b.num_rows
    for name in a.column_names:
        ca, cb = a.column(name), b.column(name)
        va = ca.validity if ca.validity is not None else np.ones(len(ca), bool)
        vb = cb.validity if cb.validity is not None else np.ones(len(cb), bool)
        assert np.array_equal(va, vb), f"validity differs in {name!r}"
        if ca.data.dtype == object or ca.data.dtype.kind in ("U", "S"):
            assert list(ca.data[va]) == list(cb.data[vb]), f"payload differs in {name!r}"
        else:
            assert ca.data[va].tobytes() == cb.data[vb].tobytes(), (
                f"payload differs in {name!r}"
            )


def run_both_modes(table: Table, sql: str) -> tuple[Table, Table]:
    db = Database()
    db.create_table("t", table)
    parallel.configure(threads=0)
    serial = db.sql(sql)
    parallel.configure(threads=4, morsel_rows=7, min_parallel_rows=1)
    try:
        par = db.sql(sql)
    finally:
        parallel.configure(threads=0)
    return serial, par


# -- morsel iterator ------------------------------------------------------------------


class TestMorselRanges:
    def test_covers_all_rows_without_overlap(self) -> None:
        ranges = parallel.morsel_ranges(10, 3)
        assert ranges == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_exact_multiple(self) -> None:
        assert parallel.morsel_ranges(6, 3) == [(0, 3), (3, 6)]

    def test_empty_input(self) -> None:
        assert parallel.morsel_ranges(0, 3) == []

    def test_single_morsel_when_smaller_than_size(self) -> None:
        assert parallel.morsel_ranges(2, 100) == [(0, 2)]


class TestConfig:
    def test_threads_gate_parallelism(self) -> None:
        parallel.configure(threads=0, min_parallel_rows=1)
        assert not parallel.should_parallelize(10_000)
        parallel.configure(threads=1)
        assert not parallel.should_parallelize(10_000)
        parallel.configure(threads=2)
        assert parallel.should_parallelize(10_000)
        parallel.configure(threads=0, morsel_rows=parallel.DEFAULT_MORSEL_ROWS)

    def test_small_inputs_fall_back_to_serial(self) -> None:
        parallel.configure(threads=4, morsel_rows=100)  # min derived = 200
        assert not parallel.should_parallelize(199)
        assert parallel.should_parallelize(200)
        parallel.configure(threads=0, morsel_rows=parallel.DEFAULT_MORSEL_ROWS)

    def test_rejects_bad_values(self) -> None:
        with pytest.raises(ValueError):
            parallel.configure(threads=-1)
        with pytest.raises(ValueError):
            parallel.configure(morsel_rows=0)
        with pytest.raises(ValueError):
            parallel.configure(pool_kind="fibers")


# -- kernel-level bit-identity --------------------------------------------------------


class TestKernels:
    def _table(self, n: int = 200, seed: int = 0) -> Table:
        rng = np.random.default_rng(seed)
        return Table.from_dict(
            {
                "g": [["a", "b", "c"][i] for i in rng.integers(0, 3, n)],
                "x": [int(v) if v % 7 else None for v in rng.integers(-50, 50, n)],
                "y": [float(v) if v < 1 else None for v in rng.normal(size=n)],
            }
        )

    def test_filter_mask_identical(self, parallel_mode) -> None:
        from repro.engine.expressions import col, truth_mask

        table = self._table()
        predicate = (col("x") > 0) & (col("y") < 0.5)
        serial = truth_mask(predicate, table)
        par = parallel.parallel_truth_mask(predicate, table)
        assert np.array_equal(serial, par)

    def test_aggregate_partials_recombine(self, parallel_mode) -> None:
        table = self._table(500, seed=3)
        serial, par = run_both_modes(
            table,
            "SELECT g, COUNT(*) AS n, COUNT(x) AS cx, SUM(x) AS sx, "
            "AVG(y) AS my, MIN(y) AS lo, MAX(y) AS hi, "
            "COUNT(DISTINCT x) AS dx FROM t GROUP BY g",
        )
        tables_bit_identical(serial, par)

    def test_global_aggregate(self, parallel_mode) -> None:
        table = self._table(300, seed=4)
        serial, par = run_both_modes(
            table, "SELECT COUNT(*) AS n, SUM(y) AS sy, AVG(x) AS mx FROM t"
        )
        tables_bit_identical(serial, par)

    def test_sum_float_preserves_pairwise_summation(self, parallel_mode) -> None:
        # float addition is not associative: naive partial-sum merging
        # would drift from numpy's pairwise summation on adversarial data
        values = [1e16, 1.0, -1e16, 1.0] * 64
        table = Table.from_dict({"y": values, "g": ["k"] * len(values)})
        serial, par = run_both_modes(table, "SELECT g, SUM(y) AS s, AVG(y) AS m FROM t GROUP BY g")
        tables_bit_identical(serial, par)

    def test_sort_multi_key_with_nulls(self, parallel_mode) -> None:
        table = self._table(300, seed=5)
        serial, par = run_both_modes(
            table, "SELECT g, x, y FROM t ORDER BY g, x DESC, y"
        )
        tables_bit_identical(serial, par)

    def test_sort_desc_stability_matches_serial(self, parallel_mode) -> None:
        table = Table.from_dict(
            {"k": [1, 1, 2, 2, 1, 2, 1, 2, 1, 1], "i": list(range(10))}
        )
        serial, par = run_both_modes(table, "SELECT k, i FROM t ORDER BY k DESC")
        tables_bit_identical(serial, par)
        # equal keys keep original (ascending i) order under DESC
        assert par.column("i").to_list()[:4] == [2, 3, 5, 7]

    def test_sort_with_nan_keys_falls_back_to_serial(self, parallel_mode) -> None:
        table = Table.from_dict({"y": [float("nan"), 1.0, 0.5, float("nan"), 2.0] * 4})
        serial, par = run_both_modes(table, "SELECT y FROM t ORDER BY y DESC")
        tables_bit_identical(serial, par)

    def test_string_sort_keys(self, parallel_mode) -> None:
        table = self._table(150, seed=6)
        serial, par = run_both_modes(table, "SELECT g, x FROM t ORDER BY g DESC, x")
        tables_bit_identical(serial, par)


# -- property-style corpus test -------------------------------------------------------


@pytest.mark.parametrize("seed", range(12))
def test_corpus_serial_and_parallel_bit_identical(seed: int) -> None:
    """Replay the SQL differential corpus in both modes; results must be
    bit-identical (payload bytes, validity masks and schemas)."""
    rng = np.random.default_rng(1000 + seed)
    table, _ = random_table(rng, n=int(rng.integers(20, 120)))
    db = Database()
    db.create_table("t", table)
    try:
        for _ in range(10):
            sql = random_query(rng)
            parallel.configure(threads=0)
            serial = db.sql(sql)
            parallel.configure(threads=4, morsel_rows=7, min_parallel_rows=1)
            par = db.sql(sql)
            try:
                tables_bit_identical(serial, par)
            except AssertionError as exc:  # pragma: no cover - diagnostic
                raise AssertionError(f"modes disagree on {sql!r}: {exc}") from exc
    finally:
        parallel.configure(threads=0, morsel_rows=parallel.DEFAULT_MORSEL_ROWS)
        parallel.shutdown_pool()


# -- observability --------------------------------------------------------------------


class TestObservability:
    def test_parallel_metrics_family_recorded(self, parallel_mode) -> None:
        old = set_registry(MetricsRegistry())
        try:
            db = Database()
            db.create_table("t", {"x": list(range(100))})
            db.sql("SELECT x FROM t WHERE x > 10")
            snapshot = set_registry(old).snapshot()
        finally:
            set_registry(old)
        assert snapshot["counters"]["parallel.morsels"] > 1
        assert snapshot["counters"]["parallel.batches"] >= 1
        assert snapshot["gauges"]["parallel.workers"] == 4
        assert snapshot["timers"]["parallel.batch_time"]["count"] >= 1

    def test_explain_analyze_shows_fanout(self, parallel_mode) -> None:
        db = Database()
        db.create_table("t", {"x": list(range(100)), "g": ["a", "b"] * 50})
        report = db.explain_analyze(
            "SELECT g, COUNT(*) AS n FROM t WHERE x > 5 GROUP BY g"
        )
        text = report.render()
        assert "morsels x 4 threads" in text
        assert any(node.annotations for node in _walk_profiles(report.root))

    def test_per_worker_spans_collected(self, parallel_mode) -> None:
        # per-worker spans live in the parent's tracer, which only the
        # thread pool shares; process workers trace into their own
        saved_pool = parallel.get_config().pool_kind
        parallel.configure(pool_kind="thread")
        tracer = get_tracer()
        tracer.clear()
        tracer.enable()
        try:
            db = Database()
            db.create_table("t", {"x": list(range(64))})
            db.sql("SELECT x FROM t WHERE x > 3")
        finally:
            tracer.disable()
            parallel.configure(pool_kind=saved_pool)
        names = [s.name for s in tracer.all_spans()]
        assert "parallel.morsel" in names
        workers = {
            s.attrs.get("worker")
            for s in tracer.all_spans()
            if s.name == "parallel.morsel"
        }
        assert all(w for w in workers)
        tracer.clear()

    def test_profiler_serial_runs_have_no_fanout_annotation(self, serial_mode) -> None:
        db = Database()
        db.create_table("t", {"x": list(range(100))})
        report = db.explain_analyze("SELECT x FROM t WHERE x > 5")
        assert "morsels" not in report.render()


def _walk_profiles(root):
    yield root
    for child in root.children:
        yield from _walk_profiles(child)


# -- knobs ----------------------------------------------------------------------------


class TestKnobs:
    def test_pragma_threads_roundtrip(self) -> None:
        db = Database()
        assert db.execute("PRAGMA threads=2") == 0
        assert parallel.get_threads() == 2
        readback = db.execute("PRAGMA threads")
        assert readback.to_dicts() == [{"pragma": "threads", "value": 2}]
        assert db.execute("PRAGMA threads=0") == 0
        assert parallel.get_threads() == 0

    def test_pragma_morsel_rows_rederives_threshold(self) -> None:
        db = Database()
        db.execute("PRAGMA morsel_rows=500")
        config = parallel.get_config()
        assert config.morsel_rows == 500
        assert config.min_parallel_rows == 1000
        parallel.configure(threads=0, morsel_rows=parallel.DEFAULT_MORSEL_ROWS)

    def test_pragma_rejects_unknown_and_garbage(self) -> None:
        from repro.errors import CatalogError

        db = Database()
        with pytest.raises(CatalogError):
            db.execute("PRAGMA bogus=1")
        with pytest.raises(CatalogError):
            db.execute("PRAGMA threads=abc")
        with pytest.raises(CatalogError):
            db.execute("PRAGMA threads=-2")

    def test_shell_threads_command(self) -> None:
        from repro.__main__ import Shell

        shell = Shell()
        out = shell.execute("\\threads 3")
        assert "threads = 3" in out
        assert "parallel" in out
        out = shell.execute("\\threads 0")
        assert "threads = 0" in out and "serial" in out
        out = shell.execute("PRAGMA threads=2")
        assert out == "ok"
        assert "threads | 2" in shell.execute("PRAGMA threads")
        shell.execute("PRAGMA threads=0")
