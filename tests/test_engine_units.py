"""Focused unit tests for the engine primitives: type system, columns,
tables, statistics, CSV I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import DataType, Table, write_csv
from repro.engine.column import Column
from repro.engine.csv_io import (
    infer_field_type,
    parse_field,
    read_csv,
    read_header,
    scan_lines,
    split_line,
)
from repro.engine.statistics import ColumnStatistics, TableStatistics
from repro.engine.types import coerce_array, common_type, infer_type
from repro.errors import CatalogError, LoadingError, TypeMismatchError


class TestTypes:
    def test_infer_basic(self):
        assert infer_type([1, 2, 3]) is DataType.INT64
        assert infer_type([1.5]) is DataType.FLOAT64
        assert infer_type([True, False]) is DataType.BOOL
        assert infer_type(["a", "b"]) is DataType.STRING
        assert infer_type(np.asarray([1, 2], dtype=np.int32)) is DataType.INT64

    def test_infer_mixed_numeric(self):
        assert infer_type([1, 2.5]) is DataType.FLOAT64

    def test_infer_rejects_mixed_kinds(self):
        with pytest.raises(TypeMismatchError):
            infer_type([1, "a"])

    def test_common_type(self):
        assert common_type(DataType.INT64, DataType.FLOAT64) is DataType.FLOAT64
        assert common_type(DataType.STRING, DataType.STRING) is DataType.STRING
        with pytest.raises(TypeMismatchError):
            common_type(DataType.STRING, DataType.INT64)

    def test_coerce_array(self):
        arr = coerce_array([1, 2], DataType.FLOAT64)
        assert arr.dtype == np.float64
        strings = coerce_array([1, None, "x"], DataType.STRING)
        assert strings.tolist() == ["1", None, "x"]
        with pytest.raises(TypeMismatchError):
            coerce_array(["abc"], DataType.INT64)


class TestColumn:
    def test_nulls_inferred_from_none(self):
        column = Column([1, None, 3])
        assert column.has_nulls
        assert column.null_count() == 1
        assert column[1] is None
        assert column.to_list() == [1, None, 3]

    def test_min_max_skip_nulls(self):
        column = Column([5.0, None, 1.0])
        assert column.min() == 1.0
        assert column.max() == 5.0

    def test_all_null_min_is_none(self):
        column = Column([None, None], dtype=DataType.FLOAT64)
        assert column.min() is None and column.max() is None

    def test_take_filter_slice_preserve_nulls(self):
        column = Column([1, None, 3, None, 5])
        taken = column.take(np.asarray([1, 4]))
        assert taken.to_list() == [None, 5]
        filtered = column.filter(np.asarray([True, True, False, False, True]))
        assert filtered.to_list() == [1, None, 5]
        sliced = column.slice(1, 3)
        assert sliced.to_list() == [None, 3]

    def test_concat_types_must_match(self):
        with pytest.raises(TypeMismatchError):
            Column([1]).concat(Column(["x"]))

    def test_concat_merges_validity(self):
        merged = Column([1, None]).concat(Column([3]))
        assert merged.to_list() == [1, None, 3]

    def test_distinct_count(self):
        assert Column([1, 1, 2, None]).distinct_count() == 2
        assert Column(["a", "a", "b"]).distinct_count() == 2

    def test_equality(self):
        assert Column([1, None]) == Column([1, None])
        assert not (Column([1]) == Column([2]))

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Column([1]))

    def test_empty_column(self):
        column = Column.empty(DataType.STRING)
        assert len(column) == 0
        assert column.to_list() == []

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.one_of(st.integers(-50, 50), st.none()), max_size=60))
    def test_property_roundtrip(self, values):
        if all(v is None for v in values) and values:
            column = Column(values, dtype=DataType.INT64)
        else:
            column = Column(values)
        assert column.to_list() == values


class TestTable:
    @pytest.fixture()
    def table(self):
        return Table.from_dict({"a": [1, 2, 3], "s": ["x", "y", "z"]})

    def test_mismatched_lengths_raise(self):
        with pytest.raises(CatalogError):
            Table({"a": Column([1]), "b": Column([1, 2])})

    def test_duplicate_names_raise(self):
        with pytest.raises(CatalogError):
            Table([("a", Column([1])), ("a", Column([2]))])

    def test_from_rows(self):
        table = Table.from_rows([(1, "u"), (2, "v")], ["n", "s"])
        assert table.column("n").to_list() == [1, 2]
        with pytest.raises(CatalogError):
            Table.from_rows([(1,)], ["a", "b"])

    def test_rename_drop_with_column(self, table):
        renamed = table.rename({"a": "b"})
        assert "b" in renamed and "a" not in renamed
        dropped = table.drop(["s"])
        assert dropped.column_names == ("a",)
        with pytest.raises(CatalogError):
            table.drop(["a", "s"])
        extended = table.with_column("d", Column([7, 8, 9]))
        assert extended.column("d").to_list() == [7, 8, 9]
        with pytest.raises(CatalogError):
            table.with_column("d", Column([1]))

    def test_concat_schema_checked(self, table):
        stacked = table.concat(table)
        assert stacked.num_rows == 6
        other = Table.from_dict({"a": [1], "t": ["q"]})
        with pytest.raises(CatalogError):
            table.concat(other)

    def test_rows_and_dicts(self, table):
        assert list(table.rows()) == [(1, "x"), (2, "y"), (3, "z")]
        assert table.to_dicts()[0] == {"a": 1, "s": "x"}

    def test_pretty_handles_nulls_and_truncation(self):
        table = Table.from_dict({"a": list(range(30)), "b": [None] * 30})
        text = table.pretty(limit=5)
        assert "NULL" in text
        assert "30 rows total" in text

    def test_head(self, table):
        assert table.head(2).num_rows == 2
        assert table.head(100).num_rows == 3

    def test_equality(self, table):
        assert table == Table.from_dict({"a": [1, 2, 3], "s": ["x", "y", "z"]})
        assert not (table == table.rename({"a": "q"}))


class TestStatistics:
    def test_column_statistics(self):
        rng = np.random.default_rng(0)
        column = Column(rng.uniform(0, 100, size=5_000))
        stats = ColumnStatistics.from_column(column)
        assert stats.row_count == 5_000
        assert 0 <= stats.min_value < stats.max_value <= 100
        assert stats.estimate_range_selectivity(0, 50) == pytest.approx(0.5, abs=0.05)
        assert stats.estimate_range_selectivity(200, 300) == 0.0
        assert stats.estimate_range_selectivity(50, 10) == 0.0

    def test_equality_selectivity(self):
        column = Column([1, 1, 2, 3])
        stats = ColumnStatistics.from_column(column)
        assert stats.estimate_equality_selectivity(2) == pytest.approx(1 / 3)
        assert stats.estimate_equality_selectivity(99) == 0.0

    def test_string_column_defaults(self):
        stats = ColumnStatistics.from_column(Column(["a", "b"]))
        assert stats.estimate_range_selectivity(None, None) == pytest.approx(1 / 3)

    def test_table_statistics(self):
        table = Table.from_dict({"a": [1, 2], "s": ["x", "y"]})
        stats = TableStatistics.from_table(table)
        assert stats.row_count == 2
        assert stats.column("a") is not None
        assert stats.column("zzz") is None

    def test_constant_column(self):
        stats = ColumnStatistics.from_column(Column([7, 7, 7]))
        assert stats.estimate_range_selectivity(7, 7) == 1.0
        assert stats.estimate_range_selectivity(8, 9) == 0.0


class TestCsvIO:
    def test_parse_field_types(self):
        assert parse_field("42", DataType.INT64) == 42
        assert parse_field("4.5", DataType.FLOAT64) == 4.5
        assert parse_field("true", DataType.BOOL) is True
        assert parse_field("No", DataType.BOOL) is False
        assert parse_field("", DataType.INT64) is None
        with pytest.raises(LoadingError):
            parse_field("abc", DataType.INT64)
        with pytest.raises(LoadingError):
            parse_field("maybe", DataType.BOOL)

    def test_infer_field_type(self):
        assert infer_field_type(["1", "2"]) is DataType.INT64
        assert infer_field_type(["1", "2.5"]) is DataType.FLOAT64
        assert infer_field_type(["true", "false"]) is DataType.BOOL
        assert infer_field_type(["x"]) is DataType.STRING
        assert infer_field_type(["", ""]) is DataType.STRING

    def test_roundtrip_with_nulls(self, tmp_path):
        table = Table.from_dict({"a": [1, None, 3], "s": ["x", "y", None]})
        path = tmp_path / "t.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert back.column("a").to_list() == [1, None, 3]
        assert back.column("s").to_list() == ["x", "y", None]

    def test_read_header_and_scan_lines(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,x\n2,y\n")
        assert read_header(path) == ["a", "b"]
        lines = list(scan_lines(path))
        assert len(lines) == 2
        assert lines[0][1] == "1,x"
        # byte offsets point at line starts
        assert lines[0][0] == 4

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(LoadingError):
            read_header(path)
        with pytest.raises(LoadingError):
            read_csv(path)

    def test_quoted_fields(self, tmp_path):
        path = tmp_path / "q.csv"
        path.write_text('a,s\n1,"hello, world"\n')
        table = read_csv(path)
        assert table.column("s").to_list() == ["hello, world"]
        assert split_line('1,"hello, world"') == ["1", "hello, world"]

    def test_explicit_dtypes(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("a\n1\n2\n")
        table = read_csv(path, dtypes=[DataType.FLOAT64])
        assert table.column("a").dtype is DataType.FLOAT64
        with pytest.raises(LoadingError):
            read_csv(path, dtypes=[DataType.INT64, DataType.INT64])
