"""An independent row-at-a-time SQL interpreter for differential testing.

Shares only the *parser* with the engine; evaluation is deliberately
naive Python over lists of dicts, so any disagreement with the vectorised
engine (or with its index-accelerated plans) exposes a real bug in the
column-store execution path.
"""

from __future__ import annotations

import math
import re
from typing import Any

from repro.engine import expressions as ex
from repro.engine.expressions import strip_outer_parens
from repro.engine.sql.ast import AggregateCall, SelectStatement

Row = dict[str, Any]


def eval_expression(expr: ex.Expression, row: Row) -> Any:
    """Evaluate one scalar expression over one row (None = SQL NULL)."""
    if isinstance(expr, ex.ColumnRef):
        return row[expr.name]
    if isinstance(expr, ex.Literal):
        return expr.value
    if isinstance(expr, ex.Comparison):
        left = eval_expression(expr.left, row)
        right = eval_expression(expr.right, row)
        if left is None or right is None:
            return None
        ops = {
            "=": lambda a, b: a == b,
            "<>": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }
        return ops[expr.op](left, right)
    if isinstance(expr, ex.Arithmetic):
        left = eval_expression(expr.left, row)
        right = eval_expression(expr.right, row)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return None if right == 0 else left / right
        if expr.op == "%":
            return None if right == 0 else math.fmod(left, right)
    if isinstance(expr, ex.Negate):
        inner = eval_expression(expr.operand, row)
        return None if inner is None else -inner
    if isinstance(expr, ex.And):
        left = eval_expression(expr.left, row)
        right = eval_expression(expr.right, row)
        if left is False or right is False:
            return False
        if left is None or right is None:
            return None
        return bool(left) and bool(right)
    if isinstance(expr, ex.Or):
        left = eval_expression(expr.left, row)
        right = eval_expression(expr.right, row)
        if left is True or right is True:
            return True
        if left is None or right is None:
            return None
        return bool(left) or bool(right)
    if isinstance(expr, ex.Not):
        inner = eval_expression(expr.operand, row)
        return None if inner is None else not inner
    if isinstance(expr, ex.InList):
        value = eval_expression(expr.operand, row)
        if value is None:
            return None
        return any(eval_expression(option, row) == value for option in expr.options)
    if isinstance(expr, ex.IsNull):
        is_null = eval_expression(expr.operand, row) is None
        return (not is_null) if expr.negated else is_null
    if isinstance(expr, ex.Like):
        value = eval_expression(expr.operand, row)
        if value is None:
            return None
        pattern = re.escape(expr.pattern).replace(r"\%", "%").replace(r"\_", "_")
        pattern = pattern.replace("%", ".*").replace("_", ".")
        matched = re.match(f"^{pattern}$", value, re.DOTALL) is not None
        return (not matched) if expr.negated else matched
    if isinstance(expr, ex.FunctionCall):
        value = eval_expression(expr.arguments[0], row)
        if value is None:
            return None
        name = expr.name
        if name == "ABS":
            return abs(value)
        if name == "SQRT":
            return None if value < 0 else math.sqrt(value)
        if name == "FLOOR":
            return float(math.floor(value))
        if name == "CEIL":
            return float(math.ceil(value))
        if name == "ROUND":
            digits = 0
            if len(expr.arguments) == 2:
                digits = int(eval_expression(expr.arguments[1], row))
            import numpy as np

            return float(np.round(value, digits))
        if name == "LN":
            return None if value <= 0 else math.log(value)
        if name == "EXP":
            result = math.exp(value)
            return None if math.isinf(result) else result
        if name == "LENGTH":
            return len(value)
        if name == "UPPER":
            return value.upper()
        if name == "LOWER":
            return value.lower()
    if isinstance(expr, ex.Case):
        for condition, value in expr.branches:
            if eval_expression(condition, row) is True:
                result = eval_expression(value, row)
                return _promote_case(expr, row, result)
        if expr.default is not None:
            return _promote_case(expr, row, eval_expression(expr.default, row))
        return None
    raise NotImplementedError(f"reference interpreter: {type(expr).__name__}")


def _promote_case(expr: ex.Case, row: Row, result: Any) -> Any:
    """Mimic the engine's numeric promotion across CASE branches."""
    kinds = set()
    for _, value in expr.branches:
        kinds.add(_static_kind(value, row))
    if expr.default is not None:
        kinds.add(_static_kind(expr.default, row))
    if result is not None and kinds == {"int", "float"} and isinstance(result, int):
        return float(result)
    return result


def _static_kind(expr: ex.Expression, row: Row) -> str:
    value = eval_expression(expr, row)
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    return "null"


def _aggregate(call: AggregateCall, rows: list[Row]) -> Any:
    if call.argument is None:
        return len(rows)
    values = [eval_expression(call.argument, row) for row in rows]
    values = [v for v in values if v is not None]
    if call.distinct:
        seen = []
        for v in values:
            if v not in seen:
                seen.append(v)
        values = seen
    if call.function == "COUNT":
        return len(values)
    if not values:
        return None
    if call.function == "SUM":
        total = sum(values)
        return float(total) if any(isinstance(v, float) for v in values) else total
    if call.function == "AVG":
        return sum(float(v) for v in values) / len(values)
    if call.function == "MIN":
        return min(values)
    if call.function == "MAX":
        return max(values)
    raise NotImplementedError(call.function)


def run_reference(statement: SelectStatement, rows: list[Row]) -> list[tuple]:
    """Execute a (single-table, join-free) SELECT over dict rows.

    Returns output rows as tuples in engine column order.  ORDER BY and
    LIMIT are honoured; the caller decides whether order matters.
    """
    if statement.joins:
        raise NotImplementedError("reference interpreter is single-table")
    working = rows
    if statement.where is not None:
        working = [
            row for row in working if eval_expression(statement.where, row) is True
        ]

    if statement.is_aggregate:
        groups: dict[tuple, list[Row]] = {}
        order: list[tuple] = []
        for row in working:
            key = tuple(
                eval_expression(expr, row) for expr in statement.group_by
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        if not statement.group_by:
            groups = {(): working}
            order = [()]
        out_rows: list[Row] = []
        for key in order:
            out: Row = {}
            for expr, value in zip(statement.group_by, key):
                name = strip_outer_parens(expr.to_sql())
                for item in statement.items:
                    if (
                        item.expression is not None
                        and item.expression.to_sql() == expr.to_sql()
                        and item.alias
                    ):
                        name = item.alias
                out[name] = value
            for name, call in statement.aggregates() + statement.having_aggregates:
                out[name] = _aggregate(call, groups[key])
            out_rows.append(out)
        if statement.having is not None:
            out_rows = [
                row for row in out_rows
                if eval_expression(statement.having, row) is True
            ]
        working_out = out_rows
        output_names = [
            item.output_name() for item in statement.items if not item.star
        ]
    else:
        working_out = []
        output_names = []
        for item in statement.items:
            if item.star:
                output_names.extend(rows[0].keys() if rows else [])
            else:
                output_names.append(item.output_name())
        for row in working:
            out = dict(row)
            for item in statement.items:
                if not item.star:
                    out[item.output_name()] = eval_expression(item.expression, row)
            working_out.append(out)

    if statement.order_by:
        # multi-key with mixed directions: stable sorts from the last key
        # backwards, matching the engine's approach (nulls rank first)
        for order_item in reversed(statement.order_by):
            working_out.sort(
                key=lambda row, item=order_item: _order_rank(item, row),
                reverse=not order_item.ascending,
            )

    if statement.distinct:
        seen: set[tuple] = set()
        deduped = []
        for row in working_out:
            signature = tuple(row.get(name) for name in output_names)
            if signature not in seen:
                seen.add(signature)
                deduped.append(row)
        working_out = deduped

    if statement.limit is not None:
        working_out = working_out[: statement.limit]
    return [tuple(row.get(name) for name in output_names) for row in working_out]


def _order_rank(order_item, row: Row):
    value = eval_expression(order_item.expression, row)
    if value is None:
        return (0, 0)
    if isinstance(value, str):
        return (1, value)
    return (1, float(value))
