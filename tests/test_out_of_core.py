"""Out-of-core storage tier tests: mmap-backed columns + I/O-level pruning.

Covers the PR 9 surface: per-part column file round trips (memory and
mmap modes, all dtypes, nulls, dictionary codes), `PRAGMA storage` /
`REPRO_STORAGE` wiring and the settings listing, recovery that reopens
checkpoint columns as read-only maps, copy-on-write against mapped
mains (UPDATE must never touch the checkpoint bytes until the next
checkpoint), the streamed scan path (`io.bytes_read` /
`io.zones_skipped_io` / `io.morsels_streamed` metrics and EXPLAIN
ANALYZE annotations, all-FAIL predicates, sub-zone tables), merge
spill-and-remap of mapped mains, `close()` releasing every map so the
durable root is deletable, and the differential corpus: storage=mmap
must be bit-identical to storage=memory under threads, worker-crash
fault injection, and a kill–recover cycle.
"""

from __future__ import annotations

import hashlib
import os
import shutil

import numpy as np
import pytest

from repro import resilience
from repro.engine import Database, Table
from repro.engine import delta as deltamod
from repro.engine import parallel, scanopt
from repro.engine import wal as walmod
from repro.engine.column import Column
from repro.engine.types import DataType
from repro.errors import CatalogError
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.storage import layouts
from tests.test_parallel import tables_bit_identical
from tests.test_sql_differential import random_query, random_table


@pytest.fixture(autouse=True)
def _pin_storage_config():
    """Deterministic storage/durability config; restore the ambient one."""
    saved_storage = layouts.get_config().storage
    saved_wal = walmod.get_config()
    saved = (saved_wal.wal, saved_wal.wal_sync, saved_wal.wal_batch)
    saved_delta = deltamod.get_config().delta_rows
    gov = resilience.get_config()
    saved_gov = (gov.faults, gov.fault_seed)
    saved_zone = scanopt.get_config().zone_rows
    layouts.configure(storage="memory")
    walmod.configure(wal=True, wal_sync="commit", wal_batch=walmod.DEFAULT_WAL_BATCH)
    deltamod.configure(delta_rows=deltamod.DEFAULT_DELTA_ROWS)
    resilience.configure(faults="off", fault_seed=0)
    registry = MetricsRegistry()
    set_registry(registry)
    yield registry
    layouts.configure(storage=saved_storage)
    walmod.configure(wal=saved[0], wal_sync=saved[1], wal_batch=saved[2])
    deltamod.configure(delta_rows=saved_delta)
    resilience.configure(faults="off", fault_seed=saved_gov[1])
    resilience.configure(faults=saved_gov[0] or "off")
    scanopt.configure(zone_rows=saved_zone)
    parallel.configure(threads=0, morsel_rows=parallel.DEFAULT_MORSEL_ROWS)


def _sample_table() -> Table:
    return Table.from_dict(
        {
            "i": [1, 2, None, 4, 5],
            "f": [0.5, None, 2.5, 3.5, float("nan")],
            "s": ["ant", None, "cat", "ant", ""],
            "b": [True, False, True, None, False],
        }
    )


def _values_equal(a, b) -> bool:
    """Element-wise equality where None==None and NaN==NaN."""
    import math

    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if x is None or y is None:
            if x is not y:
                return False
        elif isinstance(x, float) and isinstance(y, float) and math.isnan(x):
            if not math.isnan(y):
                return False
        elif x != y:
            return False
    return True


def _dir_digest(directory) -> dict[str, str]:
    """Content hash of every file under a directory tree."""
    digests = {}
    for root, _dirs, files in os.walk(directory):
        for name in files:
            path = os.path.join(root, name)
            rel = os.path.relpath(path, directory)
            digests[rel] = hashlib.sha256(open(path, "rb").read()).hexdigest()
    return digests


# -- column file round trips ----------------------------------------------------------


class TestColumnFiles:
    @pytest.mark.parametrize("mode", ["memory", "mmap"])
    def test_roundtrip_all_dtypes(self, tmp_path, mode):
        table = _sample_table()
        for ci, name in enumerate(table.column_names):
            column = table.column(name)
            files = layouts.save_column_files(tmp_path, f"c{ci}", column)
            reopened = layouts.open_column_files(tmp_path, files, column.dtype, mode)
            assert reopened.dtype is column.dtype
            assert _values_equal(list(reopened), list(column))
            assert reopened.is_mapped is (mode == "mmap")

    def test_dictionary_codes_roundtrip(self, tmp_path):
        column = Column(["bee", "ant", None, "bee"])
        assert column.encode_dictionary()
        files = layouts.save_column_files(tmp_path, "c0", column)
        assert set(files) == {"data", "validity", "codes", "dictionary"}
        reopened = layouts.open_column_files(tmp_path, files, DataType.STRING, "mmap")
        codes, values = reopened.dictionary()
        want_codes, want_values = column.dictionary()
        assert np.array_equal(codes, want_codes)
        assert list(values) == list(want_values)

    def test_empty_column_mmap(self, tmp_path):
        column = Column.empty(DataType.INT64)
        files = layouts.save_column_files(tmp_path, "c0", column)
        reopened = layouts.open_column_files(tmp_path, files, DataType.INT64, "mmap")
        assert len(reopened) == 0 and reopened.is_mapped

    def test_mapped_data_is_readonly(self, tmp_path):
        column = Column([1, 2, 3])
        files = layouts.save_column_files(tmp_path, "c0", column)
        reopened = layouts.open_column_files(tmp_path, files, DataType.INT64, "mmap")
        with pytest.raises(ValueError):
            reopened.data[0] = 99

    def test_backing_paths_and_release(self, tmp_path):
        column = Column([1.5, None, 3.0])
        files = layouts.save_column_files(tmp_path, "c0", column)
        reopened = layouts.open_column_files(tmp_path, files, DataType.FLOAT64, "mmap")
        backing = reopened.backing
        assert all(path.exists() for path in backing.paths().values())
        assert backing.mmap_handles()
        backing.release()
        assert backing.mmap_handles() == []

    def test_derived_columns_drop_backing(self, tmp_path):
        column = Column([1, 2, 3, 4])
        files = layouts.save_column_files(tmp_path, "c0", column)
        reopened = layouts.open_column_files(tmp_path, files, DataType.INT64, "mmap")
        assert reopened.is_mapped
        assert not reopened.slice(0, 2).is_mapped
        assert not reopened.filter(np.array([True, False, True, False])).is_mapped
        assert not reopened.take(np.array([0, 2])).is_mapped

    def test_bad_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            layouts.open_column_files(tmp_path, {}, DataType.INT64, "turbo")


# -- configuration wiring -------------------------------------------------------------


class TestStorageConfig:
    def test_pragma_set_and_read(self):
        db = Database()
        db.execute("PRAGMA storage=mmap")
        assert layouts.get_config().storage == "mmap"
        assert db.execute("PRAGMA storage").column("value")[0] == "mmap"
        db.execute("PRAGMA storage=memory")
        assert layouts.get_config().storage == "memory"

    def test_pragma_rejects_bad_mode(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.execute("PRAGMA storage=turbo")

    def test_settings_listing_includes_storage(self):
        db = Database()
        rows = {row[0]: (row[1], row[2]) for row in db.execute("PRAGMA").rows()}
        # the fixture pins the value; the source still reflects the env leg
        assert rows["storage"][0] == "memory"
        assert rows["storage"][1].startswith(("default", "env:"))
        db.execute("PRAGMA storage=mmap")
        rows = {row[0]: (row[1], row[2]) for row in db.execute("PRAGMA").rows()}
        assert rows["storage"] == ("mmap", "pragma")

    def test_configure_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            layouts.configure(storage="ram")


# -- recovery opens columns as maps ---------------------------------------------------


class TestMappedRecovery:
    def _seed(self, root) -> None:
        with Database(path=root) as db:
            db.execute("CREATE TABLE t (a INT, b DOUBLE, s TEXT)")
            db.execute(
                "INSERT INTO t VALUES (1, 1.5, 'x'), (2, 2.5, 'y'), (3, NULL, NULL)"
            )
            db.checkpoint()

    def test_recovery_maps_cold_tables(self, tmp_path):
        root = tmp_path / "db"
        self._seed(root)
        layouts.configure(storage="mmap")
        with Database(path=root) as db:
            assert db.get_table("t").is_mapped
            assert db.sql("SELECT a FROM t WHERE a >= 2").column("a").to_list() == [2, 3]

    def test_memory_mode_unchanged(self, tmp_path):
        root = tmp_path / "db"
        self._seed(root)
        with Database(path=root) as db:
            assert not db.get_table("t").is_mapped

    def test_mapped_vs_memory_recovery_identical(self, tmp_path):
        root = tmp_path / "db"
        self._seed(root)
        with Database(path=root) as db:
            expected = db.sql("SELECT * FROM t ORDER BY a")
        layouts.configure(storage="mmap")
        with Database(path=root) as db:
            tables_bit_identical(db.sql("SELECT * FROM t ORDER BY a"), expected)

    def test_wal_tail_replays_over_mapped_main(self, tmp_path):
        root = tmp_path / "db"
        self._seed(root)
        with Database(path=root) as db:  # tail beyond the checkpoint
            db.execute("INSERT INTO t VALUES (4, 4.5, 'z')")
        layouts.configure(storage="mmap")
        with Database(path=root) as db:
            got = db.sql("SELECT a FROM t ORDER BY a").column("a").to_list()
            assert got == [1, 2, 3, 4]
            # delta tail stays in RAM; the cold main is the mapped part
            assert db.main_table("t").is_mapped

    def test_delta_stays_in_ram_after_recovery(self, tmp_path):
        root = tmp_path / "db"
        self._seed(root)
        layouts.configure(storage="mmap")
        with Database(path=root) as db:
            db.execute("INSERT INTO t VALUES (9, 9.5, 'q')")
            store = db.delta_store_if_dirty("t")
            assert store is not None and store.pending_inserts == 1
            assert db.main_table("t").is_mapped
            got = db.sql("SELECT a FROM t ORDER BY a").column("a").to_list()
            assert got == [1, 2, 3, 9]

    def test_checkpoint_adopts_new_files_mid_session(self, tmp_path):
        """`PRAGMA storage=mmap` + checkpoint takes a live session out of core."""
        root = tmp_path / "db"
        with Database(path=root) as db:
            db.execute("CREATE TABLE t (a INT, s TEXT)")
            db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
            assert not db.get_table("t").is_mapped
            db.execute("PRAGMA storage=mmap")
            db.checkpoint()
            assert db.get_table("t").is_mapped
            assert db.sql("SELECT a FROM t ORDER BY a").column("a").to_list() == [1, 2]
            # and a second checkpoint re-homes the maps onto its own files
            first = db.get_table("t").column("a").backing.directory
            db.execute("INSERT INTO t VALUES (3, 'z')")
            db.checkpoint()
            second = db.get_table("t").column("a").backing.directory
            assert first != second
            assert db.sql("SELECT a FROM t ORDER BY a").column("a").to_list() == [1, 2, 3]

    def test_v1_checkpoints_still_load(self, tmp_path):
        """A v1 (one-.npz-per-column) checkpoint remains a valid source."""
        root = tmp_path / "db"
        self._seed(root)
        directory = root / walmod.checkpoint_dir_name(1)
        manifest_path = directory / "MANIFEST.json"
        import json

        manifest = json.loads(manifest_path.read_text())
        assert manifest["format"] == 2
        for table_meta in manifest["tables"]:
            for ci, column_meta in enumerate(table_meta["columns"]):
                files = column_meta.pop("files")
                dtype = DataType[column_meta["dtype"]]
                column = layouts.open_column_files(directory, files, dtype, "memory")
                npz_name = f"v1_{ci}.npz"
                layouts.save_column(str(directory / npz_name), column)
                column_meta["file"] = npz_name
        manifest["format"] = 1
        manifest_path.write_text(json.dumps(manifest))
        layouts.configure(storage="mmap")
        with Database(path=root) as db:  # v1 columns load materialised
            assert not db.get_table("t").is_mapped
            assert db.sql("SELECT a FROM t ORDER BY a").column("a").to_list() == [1, 2, 3]


# -- copy-on-write against mapped mains ----------------------------------------------


class TestMappedCopyOnWrite:
    def test_update_never_touches_checkpoint_bytes(self, tmp_path):
        root = tmp_path / "db"
        with Database(path=root) as db:
            db.execute("CREATE TABLE t (a INT, s TEXT)")
            db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
            db.checkpoint()
        layouts.configure(storage="mmap")
        db = Database(path=root)
        try:
            directory = db.get_table("t").column("a").backing.directory
            before = _dir_digest(directory)
            db.execute("UPDATE t SET a = a + 100, s = 'w' WHERE a >= 2")
            assert db.sql("SELECT a FROM t ORDER BY a").column("a").to_list() == [
                1, 102, 103,
            ]
            assert _dir_digest(directory) == before, (
                "UPDATE against a mapped table mutated checkpoint bytes"
            )
            # the next checkpoint is where the new image lands on disk
            db.checkpoint()
            new_dir = db.get_table("t").column("a").backing.directory
            assert new_dir != directory
            assert _dir_digest(new_dir) != before
        finally:
            db.close()

    def test_delete_and_insert_leave_checkpoint_bytes(self, tmp_path):
        root = tmp_path / "db"
        with Database(path=root) as db:
            db.execute("CREATE TABLE t (a INT)")
            db.execute("INSERT INTO t VALUES (1), (2), (3), (4)")
            db.checkpoint()
        layouts.configure(storage="mmap")
        with Database(path=root) as db:
            directory = db.get_table("t").column("a").backing.directory
            before = _dir_digest(directory)
            db.execute("DELETE FROM t WHERE a = 2")
            db.execute("INSERT INTO t VALUES (9)")
            assert db.sql("SELECT a FROM t ORDER BY a").column("a").to_list() == [
                1, 3, 4, 9,
            ]
            assert _dir_digest(directory) == before

    def test_dictionary_extension_copies(self, tmp_path):
        root = tmp_path / "db"
        with Database(path=root) as db:
            db.execute("CREATE TABLE t (s TEXT)")
            db.execute("INSERT INTO t VALUES ('ant'), ('bee')")
            db.checkpoint()
        layouts.configure(storage="mmap")
        deltamod.configure(delta_rows=1)  # merge (and dict extension) per write
        with Database(path=root) as db:
            directory = db.get_table("t").column("s").backing.directory
            before = _dir_digest(directory)
            db.execute("INSERT INTO t VALUES ('cat')")
            got = db.sql("SELECT s FROM t ORDER BY s").column("s").to_list()
            assert got == ["ant", "bee", "cat"]
            assert _dir_digest(directory) == before


# -- merge spill-and-remap ------------------------------------------------------------


class TestMappedMerge:
    def test_merge_spills_to_live_dir_and_remaps(self, tmp_path):
        root = tmp_path / "db"
        with Database(path=root) as db:
            db.execute("CREATE TABLE t (a INT)")
            db.execute("INSERT INTO t VALUES (1), (2)")
            db.checkpoint()
        layouts.configure(storage="mmap")
        deltamod.configure(delta_rows=1)
        with Database(path=root) as db:
            db.execute("INSERT INTO t VALUES (3)")  # threshold merge
            main = db.main_table("t")
            assert main.is_mapped  # remapped onto the spilled image
            assert main.column("a").backing.directory.name.startswith("live-")
            assert db.sql("SELECT a FROM t ORDER BY a").column("a").to_list() == [1, 2, 3]
            # checkpoint re-homes the data and retires the scratch dir
            db.checkpoint()
            assert not any(p.name.startswith("live-") for p in root.iterdir())
            assert db.get_table("t").column("a").backing.directory.name.startswith(
                "checkpoint-"
            )

    def test_kill_after_merge_recovers_by_replay(self, tmp_path):
        root = tmp_path / "db"
        with Database(path=root) as db:
            db.execute("CREATE TABLE t (a INT)")
            db.execute("INSERT INTO t VALUES (1), (2)")
            db.checkpoint()
        layouts.configure(storage="mmap")
        deltamod.configure(delta_rows=1)
        db = Database(path=root)
        db.execute("INSERT INTO t VALUES (3)")
        db.execute("INSERT INTO t VALUES (4)")
        # abandon without close: the WAL (synced per commit) is the truth
        del db
        with Database(path=root) as db2:
            got = db2.sql("SELECT a FROM t ORDER BY a").column("a").to_list()
            assert got == [1, 2, 3, 4]
            assert db2.main_table("t").is_mapped


# -- the streamed scan path and io.* metrics ------------------------------------------


def _clustered_db(root, rows: int = 4096, zone_rows: int = 256) -> Database:
    """A durable db whose `k` column is zone-clustered (equal to zone index)."""
    scanopt.configure(zone_rows=zone_rows)
    with Database(path=root) as db:
        db.create_table(
            "t",
            Table.from_dict(
                {
                    "k": [i // zone_rows for i in range(rows)],
                    "v": [float(i % 97) for i in range(rows)],
                }
            ),
        )
        db.checkpoint()
    layouts.configure(storage="mmap")
    return Database(path=root)


class TestStreamedScan:
    def test_selective_scan_reads_under_ten_percent(self, tmp_path, _pin_storage_config):
        registry = _pin_storage_config
        db = _clustered_db(tmp_path / "db")
        try:
            table = db.get_table("t")
            total = sum(table.column(n).data.nbytes for n in table.column_names)
            result = db.sql("SELECT v FROM t WHERE k = 3")
            assert result.num_rows == 256
            read = registry.counter("io.bytes_read").value
            assert 0 < read < total * 0.10, (read, total)
            assert registry.counter("io.zones_skipped_io").value == 15
            assert registry.counter("io.morsels_streamed").value == 1
        finally:
            db.close()

    def test_streamed_equals_mask_path(self, tmp_path):
        db = _clustered_db(tmp_path / "db")
        try:
            streamed = db.sql("SELECT * FROM t WHERE k >= 14 AND v < 50")
        finally:
            db.close()
        layouts.configure(storage="memory")
        db = Database(path=tmp_path / "db")
        try:
            tables_bit_identical(
                streamed, db.sql("SELECT * FROM t WHERE k >= 14 AND v < 50")
            )
        finally:
            db.close()

    def test_all_fail_predicate_reads_nothing(self, tmp_path, _pin_storage_config):
        registry = _pin_storage_config
        db = _clustered_db(tmp_path / "db")
        try:
            result = db.sql("SELECT * FROM t WHERE k = 999")
            assert result.num_rows == 0
            assert registry.counter("io.bytes_read").value == 0
            assert registry.counter("io.zones_skipped_io").value == 16
            assert registry.counter("io.morsels_streamed").value == 0
        finally:
            db.close()

    def test_explain_analyze_annotates_io(self, tmp_path):
        db = _clustered_db(tmp_path / "db")
        try:
            report = db.explain_analyze("SELECT v FROM t WHERE k = 3").render()
            assert "io:" in report
            assert "zones skipped" in report and "morsels streamed" in report
        finally:
            db.close()

    def test_fused_aggregate_streams_mapped_ranges(self, tmp_path, _pin_storage_config):
        registry = _pin_storage_config
        db = _clustered_db(tmp_path / "db")
        try:
            got = db.sql("SELECT COUNT(*) AS n FROM t WHERE k = 5")
            assert got.column("n")[0] == 256
            assert registry.counter("io.zones_skipped_io").value >= 15
            report = db.explain_analyze(
                "SELECT COUNT(*) AS n FROM t WHERE k = 5"
            ).render()
            assert "io:" in report
        finally:
            db.close()

    def test_table_smaller_than_one_zone(self, tmp_path):
        root = tmp_path / "db"
        scanopt.configure(zone_rows=1024)
        with Database(path=root) as db:
            db.execute("CREATE TABLE small (a INT)")
            db.execute("INSERT INTO small VALUES (1), (2), (3)")
            db.checkpoint()
        layouts.configure(storage="mmap")
        with Database(path=root) as db:
            assert db.get_table("small").is_mapped
            got = db.sql("SELECT a FROM small WHERE a > 1 ORDER BY a")
            assert got.column("a").to_list() == [2, 3]

    def test_empty_table_mapped_scan(self, tmp_path):
        root = tmp_path / "db"
        with Database(path=root) as db:
            db.execute("CREATE TABLE e (a INT)")
            db.checkpoint()
        layouts.configure(storage="mmap")
        with Database(path=root) as db:
            assert db.sql("SELECT a FROM e WHERE a = 1").num_rows == 0

    def test_streamed_scan_with_tombstones(self, tmp_path):
        """The live-main mask is ANDed into the streamed ranges."""
        db = _clustered_db(tmp_path / "db")
        try:
            db.execute("DELETE FROM t WHERE v = 3.0 AND k = 3")
            got = db.sql("SELECT v FROM t WHERE k = 3")
            # zone 3 holds rows 768..1024, v cycles mod 97: count removed rows
            removed = sum(1 for i in range(768, 1024) if i % 97 == 3)
            assert removed > 0
            assert got.num_rows == 256 - removed
        finally:
            db.close()


# -- close() releases the maps --------------------------------------------------------


class TestCloseReleasesMaps:
    def test_root_deletable_after_close(self, tmp_path):
        root = tmp_path / "db"
        with Database(path=root) as db:
            db.execute("CREATE TABLE t (a INT)")
            db.execute("INSERT INTO t VALUES (1)")
            db.checkpoint()
        layouts.configure(storage="mmap")
        db = Database(path=root)
        assert db.get_table("t").is_mapped
        db.close()
        shutil.rmtree(root)  # must not raise, even with strict semantics
        assert not root.exists()

    def test_close_idempotent_with_maps(self, tmp_path):
        root = tmp_path / "db"
        with Database(path=root) as db:
            db.execute("CREATE TABLE t (a INT)")
            db.checkpoint()
        layouts.configure(storage="mmap")
        db = Database(path=root)
        db.close()
        db.close()


# -- the differential corpus ----------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_corpus_bit_identity_mmap_vs_memory(seed: int, tmp_path) -> None:
    """Replay the differential corpus against a durable database twice —
    recovered with storage=memory and storage=mmap — under the morsel
    pool with worker-crash injection and tiny zones, with a kill–recover
    cycle in between.  Payloads must match byte for byte."""
    rng = np.random.default_rng(3000 + seed)
    table, rows = random_table(rng, n=int(rng.integers(30, 120)))
    queries = [random_query(rng) for _ in range(10)]
    root = tmp_path / "db"

    with Database(path=root) as db:
        db.create_table(
            "t",
            Table.from_dict(
                {name: [r[name] for r in rows] for name in ("id", "a", "b", "s")}
            ),
        )
        db.checkpoint()
        # a WAL tail past the checkpoint, so recovery replays too
        db.execute("INSERT INTO t VALUES (900, 1, 1.0, 'elk')")
        db.execute("DELETE FROM t WHERE id = 0")

    saved_zone = scanopt.get_config().zone_rows
    try:
        scanopt.configure(zone_rows=8)
        layouts.configure(storage="memory")
        baseline_db = Database(path=root)
        baseline = [baseline_db.sql(sql) for sql in queries]
        baseline_db.close()

        layouts.configure(storage="mmap")
        parallel.configure(threads=4, morsel_rows=7, min_parallel_rows=1)
        resilience.configure(faults="worker_crash:0.1", fault_seed=seed)
        mapped_db = Database(path=root)
        assert mapped_db.main_table("t").is_mapped
        mapped = [mapped_db.sql(sql) for sql in queries]
        # kill (no close) and recover mid-session: maps reopen, results hold
        del mapped_db
        recovered_db = Database(path=root)
        recovered = [recovered_db.sql(sql) for sql in queries]
        recovered_db.close()
    finally:
        parallel.configure(threads=0, morsel_rows=parallel.DEFAULT_MORSEL_ROWS)
        resilience.configure(faults="off")
        scanopt.configure(zone_rows=saved_zone)
        layouts.configure(storage="memory")

    for sql, expected, got, again in zip(queries, baseline, mapped, recovered):
        try:
            tables_bit_identical(got, expected)
            tables_bit_identical(again, expected)
        except AssertionError as exc:
            raise AssertionError(f"mmap engine diverged on: {sql}") from exc
