"""Detailed tests of the SQL lexer, parser, expressions and planner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database, Table, col, lit
from repro.engine.expressions import truth_mask
from repro.engine.sql import parse, tokenize, TokenType
from repro.errors import BindError, LexerError, ParseError


class TestLexer:
    def test_keywords_uppercased(self):
        tokens = tokenize("select FROM Where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 2.5E-2")
        values = [t.value for t in tokens[:-1]]
        assert values == [1, 2.5, 1000.0, 0.025]
        assert isinstance(values[0], int)

    def test_string_escapes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- a comment\n a")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "a"]

    def test_neq_normalised(self):
        tokens = tokenize("a != b")
        assert tokens[1].value == "<>"

    def test_bad_character(self):
        with pytest.raises(LexerError):
            tokenize("SELECT @a")

    def test_eof_token(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].type is TokenType.EOF


class TestParser:
    def test_roundtrip_simple(self):
        statement = parse("SELECT a, b FROM t WHERE a > 5 ORDER BY b DESC LIMIT 3")
        again = parse(statement.to_sql())
        assert again.to_sql() == statement.to_sql()

    def test_aggregates(self):
        statement = parse("SELECT COUNT(*), AVG(x) AS m FROM t")
        assert statement.is_aggregate
        names = [item.output_name() for item in statement.items]
        assert names == ["count_star", "m"]

    def test_count_distinct(self):
        statement = parse("SELECT COUNT(DISTINCT a) FROM t")
        assert statement.items[0].aggregate.distinct

    def test_having_rewrites_aggregates(self):
        statement = parse(
            "SELECT a, SUM(b) FROM t GROUP BY a HAVING SUM(b) > 10 AND COUNT(*) > 1"
        )
        assert len(statement.having_aggregates) == 2
        assert statement.having is not None

    def test_between_expansion(self):
        statement = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
        sql = statement.where.to_sql()
        assert ">=" in sql and "<=" in sql

    def test_not_in(self):
        statement = parse("SELECT a FROM t WHERE a NOT IN (1, 2)")
        assert "NOT" in statement.where.to_sql()

    def test_join_parsing(self):
        statement = parse("SELECT a FROM t JOIN u ON t.k = u.k")
        assert len(statement.joins) == 1
        assert statement.joins[0].kind == "inner"

    def test_left_join(self):
        statement = parse("SELECT a FROM t LEFT JOIN u ON t.k = u.k")
        assert statement.joins[0].kind == "left"

    def test_operator_precedence(self):
        statement = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # AND binds tighter: a=1 OR (b=2 AND c=3)
        sql = statement.where.to_sql()
        assert sql.startswith("((a = 1) OR")

    def test_arithmetic_precedence(self):
        statement = parse("SELECT a + b * 2 FROM t")
        assert statement.items[0].expression.to_sql() == "(a + (b * 2))"

    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "SELECT FROM t",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t LIMIT -1",
            "SELECT a FROM t GROUP",
            "SELECT a FROM t trailing nonsense extra",
            "SELECT SUM(a) FROM t WHERE SUM(a) > 1",
        ],
    )
    def test_bad_queries_raise(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_trailing_semicolon_ok(self):
        assert parse("SELECT a FROM t;").table == "t"

    @settings(max_examples=50, deadline=None)
    @given(
        column=st.sampled_from(["a", "b", "c"]),
        value=st.integers(-1000, 1000),
        op=st.sampled_from(["=", "<", "<=", ">", ">=", "<>"]),
        limit=st.integers(0, 100),
    )
    def test_property_roundtrip(self, column, value, op, limit):
        sql = f"SELECT {column} FROM t WHERE {column} {op} {value} LIMIT {limit}"
        statement = parse(sql)
        assert parse(statement.to_sql()).to_sql() == statement.to_sql()


class TestExpressions:
    @pytest.fixture()
    def table(self):
        return Table.from_dict({"a": [1, 2, 3, None], "b": [1.0, None, 3.0, 4.0]})

    def test_kleene_and(self, table):
        # NULL AND FALSE = FALSE (known), NULL AND TRUE = NULL
        predicate = (col("a") > 0) & (col("b") > 0)
        mask = truth_mask(predicate, table)
        assert mask.tolist() == [True, False, True, False]

    def test_kleene_or(self, table):
        predicate = (col("a") > 2) | (col("b") > 2)
        mask = truth_mask(predicate, table)
        # row1: F|F=F; row2: F|NULL=NULL->drop; row3: T; row4: NULL|T=T
        assert mask.tolist() == [False, False, True, True]

    def test_not_null_propagates(self, table):
        predicate = ~(col("a") > 2)
        mask = truth_mask(predicate, table)
        assert mask.tolist() == [True, True, False, False]

    def test_is_null(self, table):
        assert truth_mask(col("a").is_null(), table).tolist() == [
            False, False, False, True,
        ]
        assert truth_mask(col("b").is_not_null(), table).tolist() == [
            True, False, True, True,
        ]

    def test_between_and_isin(self, table):
        assert truth_mask(col("a").between(2, 3), table).tolist() == [
            False, True, True, False,
        ]
        assert truth_mask(col("a").isin([1, 3]), table).tolist() == [
            True, False, True, False,
        ]

    def test_arithmetic_nulls(self, table):
        result = (col("a") + col("b")).evaluate(table)
        assert result.to_list() == [2.0, None, 6.0, None]

    def test_string_comparison(self):
        table = Table.from_dict({"s": ["apple", "banana", "cherry"]})
        mask = truth_mask(col("s") >= "banana", table)
        assert mask.tolist() == [False, True, True]

    def test_literal_rendering(self):
        assert lit("it's").to_sql() == "'it''s'"
        assert lit(None).to_sql() == "NULL"
        assert lit(True).to_sql() == "TRUE"

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(st.integers(-100, 100), min_size=1, max_size=50),
        low=st.integers(-100, 100),
        width=st.integers(0, 100),
    )
    def test_property_between_matches_python(self, values, low, width):
        table = Table.from_dict({"v": values})
        mask = truth_mask(col("v").between(low, low + width), table)
        expected = [low <= v <= low + width for v in values]
        assert mask.tolist() == expected


class TestPlanner:
    @pytest.fixture()
    def db(self):
        database = Database()
        database.create_table("t", {"a": list(range(100)), "b": list(range(100))})
        database.create_table("u", {"a": [1, 2], "label": ["x", "y"]})
        return database

    def test_index_probe_selected(self, db):
        from repro.indexing import CrackerIndex

        values = np.asarray(db.get_table("t").column("a").data)
        db.register_index("t", "a", CrackerIndex(values))
        plan = db.plan("SELECT b FROM t WHERE a >= 10 AND a <= 20")
        assert "index" in plan.explain()
        result = db.sql("SELECT b FROM t WHERE a >= 10 AND a <= 20 ORDER BY b")
        assert result.column("b").to_list() == list(range(10, 21))

    def test_no_index_no_probe(self, db):
        plan = db.plan("SELECT b FROM t WHERE a >= 10")
        assert "index" not in plan.explain()

    def test_pushdown_with_join(self, db):
        from repro.engine import scanopt

        # b < 50 pushed into the scan; the optimizer pushes the
        # right-table label filter below the join as well (pin the
        # optimizer on: the REPRO_OPTIMIZER=0 CI leg disables it)
        previous = scanopt.get_config().optimizer
        scanopt.configure(optimizer=True)
        try:
            plan = db.plan(
                "SELECT label FROM t JOIN u ON t.a = u.a WHERE b < 50 AND label = 'x'"
            )
        finally:
            scanopt.configure(optimizer=previous)
        text = plan.explain()
        assert "Scan(t, filter: (b < 50))" in text
        assert "right filter: (label = 'x')" in text

    def test_bind_error_unknown_qualifier(self, db):
        with pytest.raises(BindError):
            db.sql("SELECT zzz.a FROM t")

    def test_bind_error_unknown_join_column(self, db):
        with pytest.raises(BindError):
            db.sql("SELECT a FROM t JOIN u ON t.zzz = u.a")

    def test_reversed_on_clause(self, db):
        result = db.sql("SELECT label FROM t JOIN u ON u.a = t.a ORDER BY label")
        assert result.column("label").to_list() == ["x", "y"]

    def test_join_name_clash_renamed(self, db):
        result = db.sql("SELECT a, right_a FROM t JOIN u ON t.a = u.a ORDER BY a")
        assert result.column("a").to_list() == result.column("right_a").to_list()
