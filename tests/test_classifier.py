"""Tests for the from-scratch CART classifier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore import DecisionTreeClassifier


def make_box_dataset(n=500, seed=0):
    """Points labelled 1 inside the box [0.3, 0.6] x [0.2, 0.7]."""
    rng = np.random.default_rng(seed)
    features = rng.uniform(0, 1, size=(n, 2))
    labels = (
        (features[:, 0] >= 0.3)
        & (features[:, 0] <= 0.6)
        & (features[:, 1] >= 0.2)
        & (features[:, 1] <= 0.7)
    ).astype(int)
    return features, labels


class TestDecisionTree:
    def test_learns_axis_aligned_box(self):
        features, labels = make_box_dataset()
        tree = DecisionTreeClassifier(max_depth=8).fit(features, labels)
        predictions = tree.predict(features)
        accuracy = float((predictions == labels).mean())
        assert accuracy > 0.95

    def test_pure_training_set(self):
        features = np.random.default_rng(1).uniform(size=(50, 2))
        labels = np.ones(50, dtype=int)
        tree = DecisionTreeClassifier().fit(features, labels)
        assert tree.predict(features).tolist() == [1] * 50
        assert tree.depth() == 0

    def test_probabilities_in_unit_interval(self):
        features, labels = make_box_dataset(n=300, seed=2)
        tree = DecisionTreeClassifier(max_depth=4).fit(features, labels)
        probabilities = tree.predict_proba(features)
        assert np.all(probabilities >= 0.0) and np.all(probabilities <= 1.0)

    def test_max_depth_respected(self):
        features, labels = make_box_dataset(n=400, seed=3)
        tree = DecisionTreeClassifier(max_depth=2).fit(features, labels)
        assert tree.depth() <= 2

    def test_positive_boxes_cover_positives(self):
        features, labels = make_box_dataset(n=600, seed=4)
        tree = DecisionTreeClassifier(max_depth=8).fit(features, labels)
        boxes = tree.positive_boxes()
        assert boxes, "expected at least one positive region"

        def in_any_box(row):
            for box in boxes:
                ok = True
                for feature, (low, high) in box.items():
                    if low is not None and row[feature] <= low:
                        ok = False
                    if high is not None and row[feature] > high:
                        ok = False
                if ok:
                    return True
            return False

        covered = sum(in_any_box(features[i]) for i in range(len(features)) if labels[i])
        assert covered / labels.sum() > 0.9

    def test_to_sql_renders_ranges(self):
        features, labels = make_box_dataset(n=400, seed=5)
        tree = DecisionTreeClassifier(max_depth=6).fit(features, labels)
        sql = tree.to_sql(["x", "y"])
        assert "x" in sql and ("<=" in sql or ">" in sql)

    def test_unfitted_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            DecisionTreeClassifier().positive_boxes()

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((3, 2)), np.zeros(4))

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(-10, 10), st.booleans()),
            min_size=6,
            max_size=80,
        )
    )
    def test_property_training_accuracy_beats_majority(self, rows):
        features = np.asarray([[r[0]] for r in rows])
        labels = np.asarray([int(r[1]) for r in rows])
        tree = DecisionTreeClassifier(max_depth=10, min_leaf=1).fit(features, labels)
        accuracy = float((tree.predict(features) == labels).mean())
        majority = max(labels.mean(), 1 - labels.mean())
        assert accuracy >= majority - 1e-9
