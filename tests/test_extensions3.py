"""Tests for the third extension wave: BlinkDB sample selection and the
ForeCache-style hybrid predictor."""

import numpy as np
import pytest

from repro.errors import ApproximationError
from repro.prefetch import (
    CubeNavigator,
    HybridRegionPredictor,
    MarkovPredictor,
    SpeculativeExecutor,
    TileCache,
)
from repro.sampling import ApproximateQueryEngine, WorkloadEntry, choose_samples
from repro.sampling.selection import candidate_column_sets
from repro.workloads import CubeSessionGenerator, SessionConfig, generate_sessions, sales_table


class TestSampleSelection:
    @pytest.fixture()
    def table(self):
        return sales_table(20_000, seed=0)

    WORKLOAD = [
        WorkloadEntry.make(["region"], frequency=10),
        WorkloadEntry.make(["category"], frequency=5),
        WorkloadEntry.make(["region", "category"], frequency=1),
        WorkloadEntry.make([], frequency=3),  # ungrouped aggregates
    ]

    def test_candidates_are_observed_sets(self):
        candidates = candidate_column_sets(self.WORKLOAD)
        assert frozenset(["region"]) in candidates
        assert frozenset([]) not in candidates
        assert len(candidates) == 3

    def test_budget_respected(self, table):
        catalog, report = choose_samples(table, self.WORKLOAD, budget_rows=3_000, cap=200)
        assert report.within_budget
        assert catalog.storage_rows() <= 3_000 + 50  # uniform rounding slack

    def test_frequent_qcs_chosen_first(self, table):
        # a budget that can only hold one stratified sample
        catalog, report = choose_samples(table, self.WORKLOAD, budget_rows=1_100, cap=200)
        assert report.chosen_column_sets
        assert report.chosen_column_sets[0] == ("region",)

    def test_larger_budget_covers_more(self, table):
        _, small = choose_samples(table, self.WORKLOAD, budget_rows=1_100, cap=200)
        _, large = choose_samples(table, self.WORKLOAD, budget_rows=20_000, cap=200)
        assert large.workload_coverage >= small.workload_coverage
        assert large.workload_coverage > 0.8

    def test_catalog_answers_covered_queries(self, table):
        catalog, report = choose_samples(table, self.WORKLOAD, budget_rows=5_000, cap=300)
        engine = ApproximateQueryEngine(table, catalog)
        answer = engine.query("avg", "revenue", group_by=["region"])
        assert len(answer.group_estimates) >= 4

    def test_impossible_budget_raises(self, table):
        with pytest.raises(ApproximationError):
            choose_samples(table, self.WORKLOAD, budget_rows=0)

    def test_tiny_budget_falls_back_to_uniform(self, table):
        catalog, report = choose_samples(table, self.WORKLOAD, budget_rows=120, cap=500)
        kinds = {s.kind for s in catalog.samples()}
        assert kinds == {"uniform"}
        assert report.chosen_column_sets == []


class TestHybridPredictor:
    def _setup(self, mix: float, seed: int = 0):
        table = sales_table(3_000, seed=seed)
        navigator = CubeNavigator(table, "price", "quantity", "revenue", levels=3, base_tiles=4)
        model = MarkovPredictor(order=1)
        for session in generate_sessions(10, SessionConfig(length=50, persistence=0.85), seed=seed + 50):
            model.observe_sequence([s.move for s in session[1:]])
        return navigator, HybridRegionPredictor(navigator, model, mix=mix)

    def test_predictions_are_valid_neighbours(self):
        navigator, predictor = self._setup(mix=0.6)
        recent = [(0, 0, 0), (0, 1, 0)]
        for region in predictor.predict(recent, k=3):
            assert navigator.region_is_valid(region)
            assert region in navigator.neighbours(recent[-1])

    def test_pure_action_mode_matches_markov_adapter(self):
        navigator, predictor = self._setup(mix=1.0)
        recent = [(1, 2, 2), (1, 3, 2), (1, 4, 2)]  # panning right
        top = predictor.predict(recent, k=1)
        assert top == [(1, 5, 2)]

    def test_data_mode_prefers_similar_tiles(self):
        navigator, predictor = self._setup(mix=0.0)
        recent = [(1, 3, 3), (1, 4, 3)]
        # seed the tile cache: recent dwell level ~10; one neighbour matches
        predictor.observe_tile((1, 3, 3), 10.0)
        predictor.observe_tile((1, 4, 3), 10.0)
        predictor.observe_tile((1, 5, 3), 10.2)   # similar
        predictor.observe_tile((1, 4, 2), 500.0)  # very different
        ranked = predictor.predict(recent, k=10)  # rank all neighbours
        assert ranked.index((1, 5, 3)) < ranked.index((1, 4, 2))

    def test_invalid_mix_raises(self):
        navigator, _ = self._setup(mix=0.5)
        with pytest.raises(ValueError):
            HybridRegionPredictor(navigator, MarkovPredictor(), mix=1.5)

    def test_hybrid_drives_speculation(self):
        navigator, predictor = self._setup(mix=0.6, seed=3)
        cache = TileCache(capacity=128)

        def compute(region):
            tile = navigator.compute_tile(region)
            predictor.observe_tile(region, tile.aggregate)
            return tile

        executor = SpeculativeExecutor(compute, cache, predictor, fanout=3)
        generator = CubeSessionGenerator(
            SessionConfig(length=80, grid_side=16, levels=3, persistence=0.85), seed=4
        )
        for step in generator.session():
            executor.request(step.region)
        assert executor.hit_rate > 0.5
