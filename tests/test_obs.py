"""Unit tests for the observability layer (``repro.obs``)."""

import json

import pytest

from repro.engine.catalog import Database
from repro.obs import (
    MetricsRegistry,
    PlanProfiler,
    Tracer,
    get_registry,
    set_registry,
)
from repro.obs.tracing import disable_tracing, enable_tracing, get_tracer, trace


@pytest.fixture()
def registry():
    """A fresh registry installed as the process default for the test."""
    fresh = MetricsRegistry()
    old = set_registry(fresh)
    yield fresh
    set_registry(old)


# -- metrics registry ------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_accumulates_and_rejects_negative(self, registry) -> None:
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert registry.counter("c").value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_write_wins(self, registry) -> None:
        registry.gauge("g").set(3.5)
        registry.gauge("g").set(1.5)
        registry.gauge("g").add(1.0)
        assert registry.gauge("g").value == 2.5

    def test_timer_observations(self, registry) -> None:
        timer = registry.timer("t")
        timer.observe(0.2)
        timer.observe(0.4)
        with timer.time():
            pass
        assert timer.count == 3
        assert timer.max_s >= 0.4
        assert timer.as_dict()["count"] == 3

    def test_snapshot_is_json_serialisable(self, registry) -> None:
        registry.counter("queries").inc()
        registry.gauge("load").set(0.7)
        registry.timer("lat").observe(0.01)
        registry.record_table("bench", ["col"], [[1], [2]])
        snapshot = json.loads(registry.to_json())
        assert snapshot["counters"] == {"queries": 1}
        assert snapshot["gauges"] == {"load": 0.7}
        assert snapshot["timers"]["lat"]["count"] == 1
        assert snapshot["benchmarks"]["bench"]["rows"] == [[1], [2]]

    def test_sources_are_weak_and_uniquely_named(self, registry) -> None:
        class Source:
            def metrics(self):
                return {"n": 1}

        first, second = Source(), Source()
        name1 = registry.register_source("cache", first)
        name2 = registry.register_source("cache", second)
        assert name1 == "cache" and name2 == "cache#2"
        assert set(registry.snapshot()["sources"]) == {"cache", "cache#2"}
        del first
        assert set(registry.snapshot()["sources"]) == {"cache#2"}

    def test_reset_clears_everything(self, registry) -> None:
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}

    def test_default_registry_swap(self, registry) -> None:
        assert get_registry() is registry


# -- tracing ---------------------------------------------------------------------------


class TestTracing:
    def test_spans_nest(self) -> None:
        tracer = Tracer(enabled=True)
        with tracer.span("outer", depth=0):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        assert len(tracer.finished) == 1
        outer = tracer.finished[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner", "inner2"]
        assert outer.duration_s >= sum(c.duration_s for c in outer.children)
        assert [s.name for s in tracer.all_spans()] == ["outer", "inner", "inner2"]

    def test_disabled_tracer_records_nothing(self) -> None:
        tracer = Tracer(enabled=False)
        with tracer.span("outer"):
            pass
        assert tracer.finished == []

    def test_default_tracer_gate(self) -> None:
        tracer = get_tracer()
        tracer.clear()
        with trace("while-disabled"):
            pass
        assert tracer.finished == []
        enable_tracing()
        try:
            with trace("while-enabled", rows=3):
                pass
        finally:
            disable_tracing()
        assert [s.name for s in tracer.finished] == ["while-enabled"]
        assert tracer.finished[0].attrs == {"rows": 3}
        tracer.clear()

    def test_engine_operators_emit_spans_when_enabled(self) -> None:
        db = Database()
        db.create_table("t", {"x": [3, 1, 2], "y": ["a", "b", "a"]})
        tracer = get_tracer()
        tracer.clear()
        enable_tracing()
        try:
            db.sql("SELECT DISTINCT y FROM t ORDER BY y")
        finally:
            disable_tracing()
        names = {s.name for s in tracer.all_spans()}
        assert {"op.sort", "op.distinct"} <= names
        tracer.clear()

    def test_span_as_dict(self) -> None:
        tracer = Tracer(enabled=True)
        with tracer.span("a", k=1):
            with tracer.span("b"):
                pass
        rendered = tracer.finished[0].as_dict()
        assert rendered["name"] == "a"
        assert rendered["attrs"] == {"k": 1}
        assert rendered["children"][0]["name"] == "b"


# -- EXPLAIN ANALYZE -------------------------------------------------------------------


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.create_table(
        "orders",
        {
            "id": [1, 2, 3, 4, 5, 6],
            "customer": ["ann", "bob", "ann", "cat", "bob", "ann"],
            "amount": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
            "region_id": [1, 2, 1, 3, 2, 9],
        },
    )
    database.create_table(
        "regions",
        {"region_id": [1, 2, 3], "region": ["north", "south", "east"]},
    )
    return database


class TestExplainAnalyze:
    def test_report_covers_every_non_aggregate_node_type(self, db: Database) -> None:
        # customer <> region spans both join sides, so it survives as a
        # residual Filter even with the plan optimizer pushing conjuncts
        report = db.explain_analyze(
            "SELECT DISTINCT customer, region FROM orders "
            "JOIN regions ON orders.region_id = regions.region_id "
            "WHERE amount > 5 AND customer <> region "
            "ORDER BY customer LIMIT 10"
        )
        labels = []

        def walk(profile):
            labels.append(profile.label)
            for child in profile.children:
                walk(child)

        walk(report.root)
        for head in ("Limit", "Sort", "Distinct", "Project", "Filter", "HashJoin", "Scan"):
            assert any(label.startswith(head) for label in labels), labels

    def test_report_covers_aggregate_node(self, db: Database) -> None:
        report = db.explain_analyze(
            "SELECT customer, SUM(amount) AS total FROM orders "
            "GROUP BY customer HAVING SUM(amount) > 0 ORDER BY customer"
        )
        text = report.render()
        assert "Aggregate(" in text

    def test_every_node_reports_time_rows_and_bytes(self, db: Database) -> None:
        report = db.explain_analyze("SELECT id FROM orders WHERE amount > 25 LIMIT 2")

        def walk(profile):
            assert profile.wall_s >= profile.self_s >= 0.0
            assert profile.rows_in >= 0 and profile.rows_out >= 0
            assert profile.bytes_out >= 0
            for child in profile.children:
                walk(child)

        walk(report.root)
        assert report.root.rows_out == 2
        # the scan reads the full base table
        leaf = report.root
        while leaf.children:
            leaf = leaf.children[0]
        assert leaf.label.startswith("Scan")
        assert leaf.rows_in == 6

    def test_render_shape(self, db: Database) -> None:
        report = db.explain_analyze("SELECT id FROM orders ORDER BY id DESC LIMIT 3")
        lines = report.lines()
        assert lines[-1].startswith("total time:")
        for line in lines[:-1]:
            if line.startswith("note:"):
                continue
            assert "time=" in line and "rows=" in line and "bytes=" in line
        assert report.as_dict()["plan"]["label"].startswith("Limit")

    def test_explain_analyze_statement_through_sql_frontend(self, db: Database) -> None:
        result = db.execute("EXPLAIN ANALYZE SELECT id FROM orders LIMIT 1")
        plan_lines = result.column("plan").to_list()
        assert any("Limit(1)" in line for line in plan_lines)
        assert any("time=" in line for line in plan_lines)
        assert plan_lines[-1].startswith("total time:")

    def test_plain_explain_statement_does_not_execute(self, db: Database) -> None:
        before = db.queries_executed
        result = db.execute("EXPLAIN SELECT id FROM orders")
        assert db.queries_executed == before
        plan_lines = result.column("plan").to_list()
        assert any("Scan(orders" in line for line in plan_lines)
        assert not any("time=" in line for line in plan_lines)

    def test_profiled_execution_matches_unprofiled_result(self, db: Database) -> None:
        from repro.engine.executor import execute_plan

        sql = "SELECT customer, amount FROM orders WHERE amount >= 30 ORDER BY amount"
        plan = db.plan(sql)
        profiler = PlanProfiler()
        profiled = execute_plan(plan, db, profiler=profiler)
        plain = execute_plan(db.plan(sql), db)
        assert profiled == plain
        assert profiler.root is not None
        assert profiler.root.rows_out == plain.num_rows

    def test_query_metrics_recorded(self, db: Database) -> None:
        fresh = MetricsRegistry()
        old = set_registry(fresh)
        try:
            db.sql("SELECT id FROM orders")
            db.explain_analyze("SELECT id FROM orders")
            snapshot = fresh.snapshot()
        finally:
            set_registry(old)
        assert snapshot["counters"]["engine.queries"] == 1
        assert snapshot["counters"]["engine.queries_profiled"] == 1
        assert snapshot["timers"]["engine.query_time"]["count"] == 2
