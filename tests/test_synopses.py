"""Tests for synopses: histograms, wavelets, sketches, samples."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synopses import (
    AMSSketch,
    BloomFilter,
    CountMinSketch,
    EquiDepthHistogram,
    EquiWidthHistogram,
    HaarWaveletSynopsis,
    HyperLogLog,
    MaxDiffHistogram,
    SampleSynopsis,
)
from repro.synopses.wavelet import haar_transform, inverse_haar_transform
from repro.workloads import zipfian_column


@pytest.fixture()
def uniform_values():
    return np.random.default_rng(0).uniform(0, 1000, size=50_000)


@pytest.fixture()
def skewed_values():
    return zipfian_column(50_000, num_values=1000, skew=1.3, seed=1).astype(float)


class TestHistograms:
    @pytest.mark.parametrize(
        "cls", [EquiWidthHistogram, EquiDepthHistogram, MaxDiffHistogram]
    )
    def test_total_count_preserved(self, cls, uniform_values):
        histogram = cls(uniform_values, num_buckets=32)
        full = histogram.estimate_range_count(-1, 1001)
        assert full == pytest.approx(len(uniform_values), rel=0.01)

    @pytest.mark.parametrize(
        "cls", [EquiWidthHistogram, EquiDepthHistogram, MaxDiffHistogram]
    )
    def test_range_estimates_reasonable_on_uniform(self, cls, uniform_values):
        histogram = cls(uniform_values, num_buckets=64)
        estimate = histogram.estimate_range_count(100, 200)
        truth = int(((uniform_values >= 100) & (uniform_values <= 200)).sum())
        assert abs(estimate - truth) / truth < 0.1

    def test_equidepth_beats_equiwidth_on_skew(self, skewed_values):
        buckets = 16
        ew = EquiWidthHistogram(skewed_values, num_buckets=buckets)
        ed = EquiDepthHistogram(skewed_values, num_buckets=buckets)

        def total_error(histogram):
            error = 0.0
            for low in range(0, 100, 5):
                high = low + 5
                truth = float(((skewed_values >= low) & (skewed_values <= high)).sum())
                error += abs(histogram.estimate_range_count(low, high) - truth)
            return error

        assert total_error(ed) < total_error(ew)

    def test_selectivity_in_unit_range(self, uniform_values):
        histogram = EquiWidthHistogram(uniform_values)
        s = histogram.estimate_selectivity(0, 500)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(0.5, abs=0.05)

    def test_empty_input(self):
        histogram = EquiWidthHistogram(np.empty(0))
        assert histogram.estimate_range_count(0, 10) == 0.0

    def test_maxdiff_exact_on_few_distinct(self):
        values = np.asarray([1.0] * 50 + [2.0] * 30 + [5.0] * 20)
        histogram = MaxDiffHistogram(values, num_buckets=8)
        assert histogram.estimate_range_count(1, 1) == pytest.approx(50)
        assert histogram.estimate_range_count(5, 5) == pytest.approx(20)


class TestWavelets:
    def test_haar_roundtrip(self):
        rng = np.random.default_rng(2)
        vector = rng.normal(size=64)
        assert np.allclose(inverse_haar_transform(haar_transform(vector)), vector)

    def test_haar_preserves_energy(self):
        rng = np.random.default_rng(3)
        vector = rng.normal(size=128)
        transformed = haar_transform(vector)
        assert np.sum(vector**2) == pytest.approx(np.sum(transformed**2))

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            haar_transform(np.zeros(100))

    def test_full_coefficients_are_exact(self, uniform_values):
        synopsis = HaarWaveletSynopsis(uniform_values, num_coefficients=256, grid_size=256)
        truth = int(((uniform_values >= 100) & (uniform_values <= 200)).sum())
        # full coefficient set: only gridding error remains
        assert abs(synopsis.estimate_range_count(100, 200) - truth) / truth < 0.05

    def test_more_coefficients_less_error(self, skewed_values):
        small = HaarWaveletSynopsis(skewed_values, num_coefficients=8, grid_size=512)
        large = HaarWaveletSynopsis(skewed_values, num_coefficients=128, grid_size=512)

        def total_error(synopsis):
            error = 0.0
            for low in range(0, 200, 20):
                truth = float(
                    ((skewed_values >= low) & (skewed_values <= low + 20)).sum()
                )
                error += abs(synopsis.estimate_range_count(low, low + 20) - truth)
            return error

        assert total_error(large) < total_error(small)

    def test_size_scales_with_coefficients(self, uniform_values):
        small = HaarWaveletSynopsis(uniform_values, num_coefficients=8)
        large = HaarWaveletSynopsis(uniform_values, num_coefficients=64)
        assert large.size_bytes > small.size_bytes


class TestCountMin:
    def test_never_underestimates(self):
        sketch = CountMinSketch(epsilon=0.01, delta=0.01)
        rng = np.random.default_rng(4)
        items = rng.integers(0, 100, size=5000)
        sketch.extend(items.tolist())
        counts = np.bincount(items, minlength=100)
        for item in range(100):
            assert sketch.estimate(item) >= counts[item]

    def test_heavy_hitters_accurate(self):
        sketch = CountMinSketch(epsilon=0.001, delta=0.01)
        items = zipfian_column(20_000, num_values=500, skew=1.5, seed=5)
        sketch.extend(items.tolist())
        counts = np.bincount(items, minlength=500)
        top = int(np.argmax(counts))
        assert sketch.estimate(top) <= counts[top] + 0.01 * len(items)

    def test_merge(self):
        a = CountMinSketch(epsilon=0.01, delta=0.1)
        b = CountMinSketch(epsilon=0.01, delta=0.1)
        a.add("x", 5)
        b.add("x", 7)
        merged = a.merge(b)
        assert merged.estimate("x") >= 12

    def test_merge_shape_mismatch(self):
        with pytest.raises(ValueError):
            CountMinSketch(0.01, 0.1).merge(CountMinSketch(0.1, 0.1))


class TestAMS:
    def test_f2_estimate(self):
        items = zipfian_column(5000, num_values=100, skew=1.2, seed=6)
        sketch = AMSSketch(num_counters=512, seed=7)
        sketch.extend(items.tolist())
        counts = np.bincount(items, minlength=100)
        truth = float(np.sum(counts.astype(np.float64) ** 2))
        assert abs(sketch.estimate_f2() - truth) / truth < 0.3


class TestHyperLogLog:
    def test_distinct_count_accuracy(self):
        hll = HyperLogLog(precision=12)
        hll.extend(range(50_000))
        estimate = hll.estimate()
        assert abs(estimate - 50_000) / 50_000 < 0.05

    def test_duplicates_do_not_inflate(self):
        hll = HyperLogLog(precision=12)
        for _ in range(10):
            hll.extend(range(1000))
        assert abs(hll.estimate() - 1000) / 1000 < 0.1

    def test_merge_unions(self):
        a, b = HyperLogLog(10), HyperLogLog(10)
        a.extend(range(0, 10_000))
        b.extend(range(5_000, 15_000))
        merged = a.merge(b)
        assert abs(merged.estimate() - 15_000) / 15_000 < 0.1

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=2)


class TestBloom:
    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=1000, false_positive_rate=0.01)
        members = [f"key_{i}" for i in range(1000)]
        bloom.extend(members)
        assert all(m in bloom for m in members)

    def test_false_positive_rate_bounded(self):
        bloom = BloomFilter(capacity=1000, false_positive_rate=0.01)
        bloom.extend(f"key_{i}" for i in range(1000))
        false_positives = sum(f"other_{i}" in bloom for i in range(10_000))
        assert false_positives / 10_000 < 0.05

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.text(max_size=10), max_size=50))
    def test_property_members_always_found(self, items):
        bloom = BloomFilter(capacity=100)
        bloom.extend(items)
        assert all(item in bloom for item in items)


class TestSampleSynopsis:
    def test_range_count(self, uniform_values):
        synopsis = SampleSynopsis(uniform_values, sample_size=5000, seed=8)
        truth = int(((uniform_values >= 200) & (uniform_values <= 400)).sum())
        assert abs(synopsis.estimate_range_count(200, 400) - truth) / truth < 0.1

    def test_mean(self, uniform_values):
        synopsis = SampleSynopsis(uniform_values, sample_size=5000, seed=9)
        assert synopsis.estimate_mean() == pytest.approx(
            float(uniform_values.mean()), rel=0.05
        )

    def test_size_accounting(self, uniform_values):
        synopsis = SampleSynopsis(uniform_values, sample_size=100)
        assert synopsis.size_bytes == 800
