"""Tests for adaptive storage layouts."""

import pytest

from repro.errors import ParseError
from repro.storage import (
    AdaptiveStore,
    ColumnGroupLayout,
    ColumnLayout,
    QueryProfile,
    RowLayout,
    WorkloadMonitor,
    parse_layout_spec,
)

COLUMNS = ["a", "b", "c", "d", "e", "f"]
N = 10_000


def scan_profile() -> QueryProfile:
    """OLAP-ish: filter one column, project one, low selectivity."""
    return QueryProfile.make(["a"], ["b"], selectivity=0.01)


def tuple_profile() -> QueryProfile:
    """OLTP-ish: materialise whole tuples for a large fraction of rows,
    where column-store reconstruction costs dominate."""
    return QueryProfile.make(["a"], COLUMNS, selectivity=0.6)


class TestCostModel:
    def test_column_beats_row_on_narrow_scan(self):
        p = scan_profile()
        assert ColumnLayout(COLUMNS).scan_cost(p, N) < RowLayout(COLUMNS).scan_cost(p, N)

    def test_row_cost_independent_of_projection(self):
        row = RowLayout(COLUMNS)
        assert row.scan_cost(scan_profile(), N) == row.scan_cost(tuple_profile(), N)

    def test_groups_interpolate(self):
        p = QueryProfile.make(["a"], ["a", "b"], selectivity=0.05)
        grouped = ColumnGroupLayout([["a", "b"], ["c", "d", "e", "f"]])
        row_cost = RowLayout(COLUMNS).scan_cost(p, N)
        assert grouped.scan_cost(p, N) < row_cost
        # reading group {a,b} for the filter costs 2 columns
        assert grouped.scan_cost(p, N) == 2 * N

    def test_groups_must_be_disjoint(self):
        with pytest.raises(ValueError):
            ColumnGroupLayout([["a", "b"], ["b", "c"]])


class TestWorkloadMonitor:
    def test_affinity_counts(self):
        monitor = WorkloadMonitor(COLUMNS)
        monitor.record(QueryProfile.make(["a"], ["b"]))
        monitor.record(QueryProfile.make(["a"], ["b"]))
        monitor.record(QueryProfile.make(["c"], ["d"]))
        affinity = monitor.affinity()
        assert affinity[("a", "b")] == 2
        assert affinity[("c", "d")] == 1

    def test_suggest_groups_clusters_coaccessed(self):
        monitor = WorkloadMonitor(COLUMNS, window=10)
        for _ in range(8):
            monitor.record(QueryProfile.make(["a"], ["b"]))
        groups = monitor.suggest_groups(min_affinity_fraction=0.5)
        grouped = next(g for g in groups if "a" in g)
        assert set(grouped) == {"a", "b"}

    def test_window_forgets(self):
        monitor = WorkloadMonitor(COLUMNS, window=3)
        monitor.record(QueryProfile.make(["a"], ["b"]))
        for _ in range(3):
            monitor.record(QueryProfile.make(["c"], ["d"]))
        assert ("a", "b") not in monitor.affinity()


class TestAdaptiveStore:
    def test_adapts_to_scan_workload(self):
        store = AdaptiveStore(COLUMNS, N, evaluation_interval=5)
        for _ in range(30):
            store.execute(scan_profile())
        assert isinstance(store.layout, (ColumnLayout, ColumnGroupLayout))
        assert store.events, "expected at least one adaptation event"

    def test_stays_row_for_tuple_workload(self):
        store = AdaptiveStore(COLUMNS, N, evaluation_interval=5)
        for _ in range(30):
            store.execute(tuple_profile())
        assert isinstance(store.layout, RowLayout)

    def test_tracks_phase_shift(self):
        store = AdaptiveStore(COLUMNS, N, evaluation_interval=5, window=10)
        for _ in range(25):
            store.execute(scan_profile())
        first_layout = store.layout.describe()
        for _ in range(25):
            store.execute(tuple_profile())
        assert store.layout.describe() != first_layout

    def test_beats_worst_static_layout(self):
        adaptive = AdaptiveStore(COLUMNS, N, evaluation_interval=5)
        static_row = RowLayout(COLUMNS)
        static_cost = 0.0
        for _ in range(60):
            p = scan_profile()
            adaptive.execute(p)
            static_cost += static_row.scan_cost(p, N)
        assert adaptive.total_cost < static_cost


class TestDeclarativeSpecs:
    def test_row_spec(self):
        layout = parse_layout_spec("row(a, b, c)")
        assert isinstance(layout, RowLayout)
        assert layout.columns == ["a", "b", "c"]

    def test_column_spec(self):
        assert isinstance(parse_layout_spec("column(x, y)"), ColumnLayout)

    def test_groups_spec(self):
        layout = parse_layout_spec("groups({a, b}; {c})")
        assert isinstance(layout, ColumnGroupLayout)
        assert layout.groups == [["a", "b"], ["c"]]

    def test_roundtrip(self):
        layout = parse_layout_spec("groups({a, b}; {c})")
        again = parse_layout_spec(layout.describe())
        assert again.describe() == layout.describe()

    @pytest.mark.parametrize(
        "bad",
        ["", "pile(a)", "row()", "groups(a, b)", "groups({a}; {a})", "row(1bad)"],
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ParseError):
            parse_layout_spec(bad)
