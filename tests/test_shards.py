"""Sharded execution tests: partitioning, scatter-gather, shipping, durability.

Covers the PR 10 surface: deterministic hash/range partitioning (NaN
and NULL keys route to shard 0, identity layouts skip the re-cluster),
`PRAGMA shards` / `shard_by` / `shard_min_rows` / `shard_index` wiring
and the settings listing, scatter-gather execution that stays
bit-identical to the unsharded path over the same re-clustered main
(filter, fused aggregate, sort; serial and threaded), the epoch-keyed
process-pool shard cache (`parallel.bytes_shipped` must not grow with
query count), shard-local pruning (`shard.shards_pruned` = N−1 on a
one-shard predicate; `io.bytes_read` bounded by one shard in mmap
mode), the partition-local `ShardedCrackerIndex` (physical-order
results, inserts, deletes, min/max pruning), layout persistence through
checkpoints and WAL-only replay, the delta write path re-applying the
layout at merge, the shell `\\shards` command, and the differential
corpus: sharded must be bit-identical to unsharded under threads,
worker-crash fault injection, mmap storage, and a kill–recover cycle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import resilience
from repro.engine import Database, Table
from repro.engine import delta as deltamod
from repro.engine import parallel, scanopt
from repro.engine import shards as shardsmod
from repro.engine import wal as walmod
from repro.engine.column import Column
from repro.errors import CatalogError
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.storage import layouts
from tests.test_parallel import tables_bit_identical
from tests.test_sql_differential import random_query, random_table


@pytest.fixture(autouse=True)
def _pin_shard_config():
    """Deterministic shard/parallel/storage config; restore the ambient one."""
    saved_shards = shardsmod.get_config()
    saved = (
        saved_shards.shards,
        saved_shards.shard_by,
        saved_shards.shard_min_rows,
        saved_shards.shard_index,
    )
    saved_storage = layouts.get_config().storage
    saved_delta = deltamod.get_config().delta_rows
    saved_zone = scanopt.get_config().zone_rows
    saved_pool = parallel.get_config().pool_kind
    gov = resilience.get_config()
    saved_gov = (gov.faults, gov.fault_seed)
    shardsmod.configure(shards=0, shard_by="hash", shard_min_rows=64, shard_index=True)
    layouts.configure(storage="memory")
    deltamod.configure(delta_rows=deltamod.DEFAULT_DELTA_ROWS)
    resilience.configure(faults="off", fault_seed=0)
    registry = MetricsRegistry()
    set_registry(registry)
    yield registry
    shardsmod.configure(
        shards=saved[0],
        shard_by=saved[1],
        shard_min_rows=saved[2],
        shard_index=saved[3],
    )
    layouts.configure(storage=saved_storage)
    deltamod.configure(delta_rows=saved_delta)
    scanopt.configure(zone_rows=saved_zone)
    resilience.configure(faults="off", fault_seed=saved_gov[1])
    resilience.configure(faults=saved_gov[0] or "off")
    parallel.configure(
        threads=0, morsel_rows=parallel.DEFAULT_MORSEL_ROWS, pool_kind=saved_pool
    )


def _filled_db(rows: int = 2000, modulus: int = 13) -> Database:
    """An in-memory db with one merged table t(k INT, v FLOAT, s TEXT)."""
    db = Database()
    db.create_table(
        "t",
        Table.from_dict(
            {
                "k": [i % modulus for i in range(rows)],
                "v": [float((i * 7) % 101) - 50.0 for i in range(rows)],
                "s": [("ant", "bee", "cat", "dog")[i % 4] for i in range(rows)],
            }
        ),
    )
    return db


# -- partitioning ---------------------------------------------------------------------


class TestPartitioning:
    def test_hash_ids_deterministic(self):
        column = Column(list(range(100)))
        first = shardsmod._hash_ids(column, 4)
        second = shardsmod._hash_ids(column, 4)
        assert np.array_equal(first, second)
        assert set(np.unique(first)) <= {0, 1, 2, 3}

    def test_hash_null_and_nan_route_to_shard_zero(self):
        ints = Column([1, None, 3])
        assert shardsmod._hash_ids(ints, 4)[1] == 0
        floats = Column([1.0, float("nan"), 3.0])
        assert shardsmod._hash_ids(floats, 4)[1] == 0

    def test_hash_strings_per_value(self):
        plain = Column(["ant", "bee", "ant", None])
        ids = shardsmod._hash_ids(plain, 8)
        assert ids[0] == ids[2]  # equal values land together
        assert ids[3] == 0
        encoded = Column(["ant", "bee", "ant", None])
        assert encoded.encode_dictionary()
        assert np.array_equal(shardsmod._hash_ids(encoded, 8), ids)

    def test_range_bounds_and_ids(self):
        column = Column([float(i) for i in range(100)])
        bounds = shardsmod.compute_bounds(column, 4)
        assert len(bounds) == 3 and bounds == sorted(bounds)
        ids = shardsmod._range_ids(column, bounds)
        counts = np.bincount(ids, minlength=4)
        assert counts.sum() == 100
        assert all(count > 0 for count in counts)
        # boundary values go left (shard s takes (bounds[s-1], bounds[s]])
        assert shardsmod._range_ids(Column([bounds[0]]), bounds)[0] == 0

    def test_range_rejects_non_numeric(self):
        table = Table.from_dict({"s": ["a", "b"]})
        with pytest.raises(ValueError):
            shardsmod.apply_layout(table, "range", "s", 2)

    def test_identity_layout_skips_recluster(self):
        table = Table.from_dict({"k": [0.0, 1.0, 2.0, 3.0]})
        new, layout, identity = shardsmod.apply_layout(table, "range", "k", 2)
        assert identity
        assert new is table  # monotone key: rows already in shard order
        assert layout.total_rows == 4

    def test_recluster_is_stable(self):
        table = Table.from_dict({"k": [1, 0, 1, 0], "pos": [0, 1, 2, 3]})
        new, layout, identity = shardsmod.apply_layout(table, "range", "k", 2)
        assert not identity
        by_shard = new.column("pos").to_list()
        assert by_shard == [1, 3, 0, 2]  # original order kept within shards

    def test_parse_shard_by(self):
        assert shardsmod.parse_shard_by("hash") == ("hash", None)
        assert shardsmod.parse_shard_by("hash(k)") == ("hash", "k")
        assert shardsmod.parse_shard_by("'range( v )'") == ("range", "v")
        for bad in ("turbo", "range(", "range)x("):
            with pytest.raises(ValueError):
                shardsmod.parse_shard_by(bad)


# -- configuration wiring -------------------------------------------------------------


class TestShardConfig:
    def test_pragma_set_and_read(self):
        db = _filled_db()
        db.execute("PRAGMA shard_min_rows=100")
        db.execute("PRAGMA shard_by='range(k)'")
        db.execute("PRAGMA shards=4")
        assert shardsmod.get_config().shards == 4
        assert db.execute("PRAGMA shards").column("value")[0] == 4
        assert db.execute("PRAGMA shard_by").column("value")[0] == "range(k)"
        layout = db.shard_layout("t")
        assert layout is not None and layout.mode == "range" and layout.key == "k"
        db.execute("PRAGMA shards=0")
        assert db.shard_layout("t") is None

    def test_pragma_rejects_bad_spec(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.execute("PRAGMA shard_by='turbo(k)'")
        with pytest.raises(CatalogError):
            db.execute("PRAGMA shards=-1")

    def test_reshard_preserves_table_spec(self):
        db = _filled_db()
        db.apply_sharding("t", 2, shard_by="range(v)")
        db.execute("PRAGMA shards=4")  # config default is hash
        layout = db.shard_layout("t")
        assert layout.num_shards == 4
        assert (layout.mode, layout.key) == ("range", "v")

    def test_small_tables_not_auto_sharded(self):
        shardsmod.configure(shards=4, shard_min_rows=10_000)
        db = _filled_db(rows=100)
        assert db.shard_layout("t") is None

    def test_auto_shard_on_create(self):
        shardsmod.configure(shards=4, shard_by="hash(k)", shard_min_rows=64)
        db = _filled_db()
        layout = db.shard_layout("t")
        assert layout is not None and layout.num_shards == 4

    def test_settings_listing_includes_shards(self):
        db = Database()
        rows = {row[0]: (row[1], row[2]) for row in db.execute("PRAGMA").rows()}
        for name in ("shards", "shard_by", "shard_min_rows", "shard_index"):
            assert name in rows
        db.execute("PRAGMA shards=2")
        rows = {row[0]: (row[1], row[2]) for row in db.execute("PRAGMA").rows()}
        assert rows["shards"] == ("2", "pragma")

    def test_unknown_pragma_lists_shard_knobs(self):
        db = Database()
        with pytest.raises(CatalogError, match="shard_by"):
            db.execute("PRAGMA shard_bee=1")


# -- apply_sharding -------------------------------------------------------------------


class TestApplySharding:
    def test_layout_covers_every_row(self):
        db = _filled_db()
        db.apply_sharding("t", 4, shard_by="hash(k)")
        layout = db.shard_layout("t")
        assert layout.offsets[0] == 0 and layout.offsets[-1] == 2000
        assert list(layout.offsets) == sorted(layout.offsets)

    def test_unknown_table_and_column_rejected(self):
        db = _filled_db()
        with pytest.raises(CatalogError):
            db.apply_sharding("nope", 2)
        with pytest.raises(CatalogError):
            db.apply_sharding("t", 2, shard_by="hash(zz)")

    def test_range_on_text_rejected(self):
        db = _filled_db()
        with pytest.raises(CatalogError):
            db.apply_sharding("t", 2, shard_by="range(s)")

    def test_unshard_keeps_rows(self):
        db = _filled_db()
        before = db.sql("SELECT SUM(v) AS s, COUNT(*) AS c FROM t").rows()
        db.apply_sharding("t", 4, shard_by="hash(k)")
        db.apply_sharding("t", 0)
        assert db.shard_layout("t") is None
        assert list(db.sql("SELECT SUM(v) AS s, COUNT(*) AS c FROM t").rows()) == list(
            before
        )

    def test_pending_delta_merged_before_sharding(self):
        db = _filled_db()
        db.execute("INSERT INTO t VALUES (99, 1.5, 'elk')")
        assert db.delta_store_if_dirty("t") is not None
        db.apply_sharding("t", 4, shard_by="hash(k)")
        assert db.delta_store_if_dirty("t") is None
        assert db.shard_layout("t").total_rows == 2001

    def test_merge_reapplies_layout(self):
        db = _filled_db()
        db.apply_sharding("t", 4, shard_by="hash(k)")
        db.execute("INSERT INTO t VALUES (5, 1.0, 'elk'), (6, 2.0, 'fox')")
        db.flush_deltas("t")
        layout = db.shard_layout("t")
        assert layout.total_rows == 2002
        # every row sits in the shard its key hashes to
        ids = shardsmod.route_ids(layout, db.main_table("t").column("k"))
        for shard in range(layout.num_shards):
            start, stop = layout.offsets[shard], layout.offsets[shard + 1]
            assert np.all(ids[start:stop] == shard)

    def test_merge_recomputes_range_bounds(self):
        db = Database()
        db.create_table("t", Table.from_dict({"k": list(range(100))}))
        db.apply_sharding("t", 2, shard_by="range(k)")
        old_bounds = db.shard_layout("t").bounds
        rows = ", ".join(f"({i})" for i in range(1000, 1100))
        db.execute(f"INSERT INTO t VALUES {rows}")
        db.flush_deltas("t")
        new_bounds = db.shard_layout("t").bounds
        assert new_bounds != old_bounds
        assert db.shard_layout("t").total_rows == 200

    def test_update_and_delete_survive_sharding(self):
        db = _filled_db()
        db.apply_sharding("t", 4, shard_by="hash(k)")
        db.execute("UPDATE t SET v = 0.0 WHERE k = 3")
        db.execute("DELETE FROM t WHERE k = 5")
        got = db.sql("SELECT COUNT(*) AS c FROM t WHERE k = 3 AND v = 0.0")
        assert got.column("c")[0] > 0
        assert db.sql("SELECT COUNT(*) AS c FROM t WHERE k = 5").column("c")[0] == 0

    def test_drop_table_forgets_layout(self):
        db = _filled_db()
        db.apply_sharding("t", 2)
        db.execute("DROP TABLE t")
        assert "t" not in db.table_names()


# -- scatter-gather execution ---------------------------------------------------------


SCATTER_QUERIES = [
    "SELECT k, COUNT(*) AS c, SUM(v) AS s, AVG(v) AS a FROM t WHERE v > 0 GROUP BY k",
    "SELECT s, MIN(v) AS lo, MAX(v) AS hi FROM t WHERE k < 7 GROUP BY s",
    "SELECT * FROM t WHERE k = 3",
    "SELECT k, v FROM t WHERE v > 25.0 AND k < 5",
    "SELECT * FROM t ORDER BY v",
    "SELECT COUNT(*) AS c FROM t WHERE s = 'bee'",
    "SELECT k FROM t WHERE k = 999",
]


class TestScatterExecution:
    @pytest.mark.parametrize("spec", ["hash(k)", "range(v)", "hash(s)"])
    @pytest.mark.parametrize("threads", [0, 4])
    def test_bit_identical_to_unsharded(self, spec, threads):
        db = _filled_db()
        db.apply_sharding("t", 4, shard_by=spec)
        # baseline: the same re-clustered rows with scatter disabled
        db.apply_sharding("t", 0)
        parallel.configure(threads=0)
        expected = [db.sql(sql) for sql in SCATTER_QUERIES]
        db.apply_sharding("t", 4, shard_by=spec)  # identity: row order kept
        parallel.configure(threads=threads, morsel_rows=257, min_parallel_rows=1)
        for sql, want in zip(SCATTER_QUERIES, expected):
            try:
                tables_bit_identical(db.sql(sql), want)
            except AssertionError as exc:
                raise AssertionError(f"sharded engine diverged on: {sql}") from exc

    def test_scatter_skipped_while_delta_dirty(self):
        db = _filled_db()
        db.apply_sharding("t", 4, shard_by="hash(k)")
        db.execute("INSERT INTO t VALUES (3, 1.0, 'elk')")
        got = db.sql("SELECT COUNT(*) AS c FROM t WHERE k = 3")
        want = 1 + sum(1 for i in range(2000) if i % 13 == 3)
        assert got.column("c")[0] == want

    def test_fanout_metrics_and_annotations(self, _pin_shard_config):
        registry = _pin_shard_config
        db = _filled_db()
        db.apply_sharding("t", 4, shard_by="hash(k)")
        parallel.configure(threads=4, morsel_rows=257, min_parallel_rows=1)
        report = db.explain_analyze("SELECT COUNT(*) AS c FROM t WHERE v > 0").render()
        assert "shards:" in report
        assert registry.counter("shard.tasks").value > 0
        assert registry.gauge("shard.count").value == 4
        assert registry.gauge("shard.skew_ratio").value >= 1.0

    def test_worker_crash_fault_injection(self):
        db = _filled_db()
        # cluster first, then unshard: the baseline must see the same row
        # order the sharded run does (hash re-clustering permutes rows)
        db.apply_sharding("t", 4, shard_by="hash(k)")
        db.apply_sharding("t", 0)
        parallel.configure(threads=0)
        expected = [db.sql(sql) for sql in SCATTER_QUERIES]
        db.apply_sharding("t", 4, shard_by="hash(k)")
        parallel.configure(threads=4, morsel_rows=257, min_parallel_rows=1)
        resilience.configure(faults="worker_crash:0.2", fault_seed=11)
        try:
            for sql, want in zip(SCATTER_QUERIES, expected):
                tables_bit_identical(db.sql(sql), want)
        finally:
            resilience.configure(faults="off")


# -- epoch shipping over the process pool ---------------------------------------------


class TestEpochShipping:
    def test_bytes_shipped_flat_across_queries(self, _pin_shard_config):
        registry = _pin_shard_config
        db = _filled_db(rows=4000)
        db.apply_sharding("t", 4, shard_by="hash(k)")
        parallel.configure(threads=0)
        sql = "SELECT k, COUNT(*) AS c, SUM(v) AS s FROM t WHERE v > -10 GROUP BY k"
        expected = db.sql(sql)
        parallel.configure(
            threads=2, morsel_rows=1024, min_parallel_rows=1, pool_kind="process"
        )
        shipped = []
        for _ in range(4):
            tables_bit_identical(db.sql(sql), expected)
            shipped.append(registry.counter("parallel.bytes_shipped").value)
        assert shipped[0] > 0, "first query must ship shard payloads"
        assert shipped[3] == shipped[0], (
            "bytes shipped grew with query count — the epoch cache is not reused: "
            f"{shipped}"
        )

    def test_new_epoch_reships_once(self, _pin_shard_config):
        registry = _pin_shard_config
        db = _filled_db(rows=4000)
        db.apply_sharding("t", 4, shard_by="hash(k)")
        sql = "SELECT COUNT(*) AS c FROM t WHERE v > -10"
        parallel.configure(
            threads=2, morsel_rows=1024, min_parallel_rows=1, pool_kind="process"
        )
        db.sql(sql)
        first = registry.counter("parallel.bytes_shipped").value
        db.execute("INSERT INTO t VALUES (1, 1.0, 'elk')")
        db.flush_deltas("t")  # new table version -> one reship
        db.sql(sql)
        second = registry.counter("parallel.bytes_shipped").value
        assert second > first
        db.sql(sql)
        assert registry.counter("parallel.bytes_shipped").value == second


# -- shard pruning --------------------------------------------------------------------


class TestShardPruning:
    def _clustered(self, root, rows=8192, zone_rows=256) -> Database:
        scanopt.configure(zone_rows=zone_rows)
        with Database(path=root) as db:
            db.create_table(
                "t",
                Table.from_dict(
                    {
                        "k": list(range(rows)),
                        "v": [float(i % 97) for i in range(rows)],
                    }
                ),
            )
            db.apply_sharding("t", 4, shard_by="range(k)")
            db.checkpoint()
        layouts.configure(storage="mmap")
        return Database(path=root)

    def test_one_shard_predicate_prunes_rest(self, tmp_path, _pin_shard_config):
        registry = _pin_shard_config
        shardsmod.configure(shard_index=False)  # exercise the scatter path
        db = self._clustered(tmp_path / "db")
        try:
            layout = db.shard_layout("t")
            got = db.sql("SELECT COUNT(*) AS c FROM t WHERE k >= 4200 AND k < 4400")
            assert got.column("c")[0] == 200
            assert registry.counter("shard.shards_pruned").value == 3
            read = registry.counter("io.bytes_read").value
            shard_bytes = 16 * max(
                layout.shard_rows(s) for s in range(layout.num_shards)
            )
            assert 0 < read <= shard_bytes, (read, shard_bytes)
        finally:
            db.close()

    def test_index_probe_prunes_shards(self, _pin_shard_config):
        # in-memory: mapped tables never get the shard index (they stay
        # on the streamed path), so probe pruning is tested unmapped
        registry = _pin_shard_config
        db = Database()
        db.create_table(
            "t",
            Table.from_dict(
                {
                    "k": list(range(8192)),
                    "v": [float(i % 97) for i in range(8192)],
                }
            ),
        )
        db.apply_sharding("t", 4, shard_by="range(k)")
        assert db.index_for("t", "k") is not None
        got = db.sql("SELECT COUNT(*) AS c FROM t WHERE k >= 4200 AND k < 4400")
        assert got.column("c")[0] == 200
        assert registry.counter("shard.shards_pruned").value == 3

    def test_mapped_table_gets_no_shard_index(self, tmp_path, _pin_shard_config):
        db = self._clustered(tmp_path / "db")
        try:
            assert db.get_table("t").is_mapped
            assert db.index_for("t", "k") is None
        finally:
            db.close()

    def test_all_fail_schedules_nothing(self, tmp_path, _pin_shard_config):
        registry = _pin_shard_config
        shardsmod.configure(shard_index=False)
        db = self._clustered(tmp_path / "db")
        try:
            got = db.sql("SELECT k FROM t WHERE k = 99999")
            assert got.num_rows == 0
            assert registry.counter("io.bytes_read").value == 0
        finally:
            db.close()


# -- the partition-local cracker index ------------------------------------------------


class TestShardedCrackerIndex:
    def _index(self, values, num_shards=4):
        table = Table.from_dict({"k": [float(v) for v in values]})
        table, layout, _ = shardsmod.apply_layout(table, "range", "k", num_shards)
        return shardsmod.ShardedCrackerIndex(table.column("k"), layout), table

    def test_lookup_matches_naive_filter(self):
        rng = np.random.default_rng(5)
        values = [float(v) for v in rng.integers(0, 500, size=400)]
        index, table = self._index(values)
        data = np.asarray(table.column("k").data)
        for low, high in ((10, 90), (0, 499), (250, 250), (495, 600)):
            got = index.lookup_range(low, high, True, True)
            want = np.flatnonzero((data >= low) & (data <= high))
            assert np.array_equal(np.sort(got), want)
            # physical order: probes are bit-identical to scans
            assert np.array_equal(got, np.sort(got))

    def test_pruning_counts_skipped_shards(self, _pin_shard_config):
        registry = _pin_shard_config
        index, _table = self._index(list(range(400)))
        index.lookup_range(10.0, 20.0, True, True)
        assert registry.counter("shard.shards_pruned").value == 3

    def test_insert_and_delete(self):
        index, table = self._index(list(range(100)))
        new_id = index.insert(42.5)
        assert new_id == 100
        got = index.lookup_range(42, 43, True, True)
        assert set(got.tolist()) == {42, 43, 100}
        index.delete(42)  # main row, lands in a shard cracker
        index.delete(100)  # tail row
        got = index.lookup_range(42, 43, True, True)
        assert set(got.tolist()) == {43}

    def test_delete_before_cracker_built(self):
        index, _table = self._index(list(range(100)))
        index.delete(7)  # stashes: shard cracker not built yet
        got = index.lookup_range(0.0, 10.0, True, True)
        assert 7 not in set(got.tolist())

    def test_nan_insert_never_matches(self):
        index, _table = self._index(list(range(10)))
        index.insert(float("nan"))
        got = index.lookup_range(-1e18, 1e18, True, True)
        assert 10 not in set(got.tolist())

    def test_auto_registered_on_shard(self):
        db = _filled_db()
        db.apply_sharding("t", 4, shard_by="hash(k)")
        assert isinstance(
            db.index_for("t", "k"), shardsmod.ShardedCrackerIndex
        )
        db.apply_sharding("t", 0)
        assert db.index_for("t", "k") is None

    def test_not_registered_on_null_or_text_keys(self):
        db = Database()
        db.create_table(
            "n", Table.from_dict({"k": [1, None] * 50, "s": ["a", "b"] * 50})
        )
        db.apply_sharding("n", 2, shard_by="hash(k)")
        assert db.index_for("n", "k") is None
        db.apply_sharding("n", 2, shard_by="hash(s)")
        assert db.index_for("n", "s") is None


# -- durability -----------------------------------------------------------------------


class TestShardDurability:
    def test_checkpoint_roundtrip(self, tmp_path):
        root = tmp_path / "db"
        with Database(path=root) as db:
            db.create_table("t", Table.from_dict({"k": list(range(500))}))
            db.apply_sharding("t", 4, shard_by="range(k)")
            saved = db.shard_layout("t")
            db.checkpoint()
        with Database(path=root) as db:
            layout = db.shard_layout("t")
            assert layout is not None
            assert (layout.mode, layout.key) == ("range", "k")
            assert list(layout.offsets) == list(saved.offsets)
            assert layout.bounds == saved.bounds

    def test_manifest_version_gates_on_sharding(self, tmp_path):
        import json

        root = tmp_path / "db"
        with Database(path=root) as db:
            db.create_table("plain", Table.from_dict({"k": [1, 2]}))
            db.checkpoint()
            manifest = json.loads(
                (root / walmod.checkpoint_dir_name(1) / "MANIFEST.json").read_text()
            )
            assert manifest["format"] == 2  # unsharded stays readable by PR 9
            db.apply_sharding("plain", 2, shard_by="hash(k)")
            db.checkpoint()
            manifest = json.loads(
                (root / walmod.checkpoint_dir_name(2) / "MANIFEST.json").read_text()
            )
            assert manifest["format"] == 3

    def test_wal_only_replay(self, tmp_path):
        root = tmp_path / "db"
        db = Database(path=root)
        db.create_table("t", Table.from_dict({"k": list(range(500))}))
        db.checkpoint()
        db.apply_sharding("t", 2, shard_by="hash(k)")
        saved = db.shard_layout("t")
        del db  # kill without close: the shard record lives in the WAL only
        with Database(path=root) as db:
            layout = db.shard_layout("t")
            assert layout is not None and layout.num_shards == 2
            assert list(layout.offsets) == list(saved.offsets)

    def test_unshard_replays(self, tmp_path):
        root = tmp_path / "db"
        with Database(path=root) as db:
            db.create_table("t", Table.from_dict({"k": list(range(500))}))
            db.apply_sharding("t", 2, shard_by="hash(k)")
            db.checkpoint()
            db.apply_sharding("t", 0)
        with Database(path=root) as db:
            assert db.shard_layout("t") is None

    def test_replay_ignores_live_config(self, tmp_path):
        """Recovery must reproduce the logged layout, not the current env."""
        root = tmp_path / "db"
        with Database(path=root) as db:
            db.create_table("t", Table.from_dict({"k": list(range(500))}))
            db.apply_sharding("t", 2, shard_by="range(k)")
            saved = db.shard_layout("t")
        shardsmod.configure(shards=8, shard_by="hash", shard_min_rows=1)
        with Database(path=root) as db:
            layout = db.shard_layout("t")
            assert layout.num_shards == 2
            assert (layout.mode, layout.key) == ("range", "k")
            assert list(layout.offsets) == list(saved.offsets)

    def test_mmap_recovery_scatter(self, tmp_path):
        root = tmp_path / "db"
        scanopt.configure(zone_rows=64)
        with Database(path=root) as db:
            db.create_table(
                "t",
                Table.from_dict(
                    {"k": list(range(2000)), "v": [float(i % 7) for i in range(2000)]}
                ),
            )
            db.apply_sharding("t", 4, shard_by="range(k)")
            db.checkpoint()
            expected = db.sql("SELECT k, v FROM t WHERE k >= 600 AND k < 700")
        layouts.configure(storage="mmap")
        parallel.configure(threads=4, morsel_rows=128, min_parallel_rows=1)
        with Database(path=root) as db:
            assert db.main_table("t").is_mapped
            tables_bit_identical(
                db.sql("SELECT k, v FROM t WHERE k >= 600 AND k < 700"), expected
            )


# -- the shell ------------------------------------------------------------------------


class TestShell:
    def test_shards_command(self):
        from repro.__main__ import Shell

        shell = Shell()
        shell.execute("CREATE TABLE t (k INT, v FLOAT)")
        rows = ", ".join(f"({i % 5}, {float(i)})" for i in range(500))
        shell.execute(f"INSERT INTO t VALUES {rows}")
        out = shell.execute("\\shards")
        assert "t: unsharded" in out
        shell.execute("PRAGMA shard_min_rows=100")
        shell.execute("PRAGMA shards=3")
        out = shell.execute("\\shards")
        assert "3 shards by hash(k)" in out and "skew" in out

    def test_help_mentions_shards(self):
        from repro import __main__ as shell_module

        assert "\\shards" in (shell_module.__doc__ or "")


# -- the differential corpus ----------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_corpus_bit_identity_sharded_vs_unsharded(seed: int, tmp_path) -> None:
    """Replay the differential corpus against a durable sharded database —
    serial/unsharded as the baseline, then sharded under the morsel pool
    with worker-crash injection, mmap storage, and a kill–recover cycle
    in between.  Payloads must match byte for byte.  The cracker index
    is disabled so both sides plan identically; it has its own tests."""
    rng = np.random.default_rng(7000 + seed)
    table, rows = random_table(rng, n=int(rng.integers(60, 160)))
    queries = [random_query(rng) for _ in range(10)]
    root = tmp_path / "db"
    shardsmod.configure(shard_index=False)

    with Database(path=root) as db:
        db.create_table(
            "t",
            Table.from_dict(
                {name: [r[name] for r in rows] for name in ("id", "a", "b", "s")}
            ),
        )
        db.apply_sharding("t", 4, shard_by=("hash(id)" if seed % 2 else "range(id)"))
        db.checkpoint()
        # a WAL tail past the checkpoint, so recovery replays DML over the
        # sharded table (inserts re-route at the next merge)
        db.execute("INSERT INTO t VALUES (900, 1, 1.0, 'elk')")
        db.execute("DELETE FROM t WHERE id = 0")

    saved_zone = scanopt.get_config().zone_rows
    try:
        scanopt.configure(zone_rows=8)
        deltamod.configure(delta_rows=1)  # replay merges the tail immediately
        baseline_db = Database(path=root)
        assert baseline_db.shard_layout("t") is not None
        # scatter off for the baseline only; the data keeps its shard order
        baseline_db.apply_sharding("t", 0, log=False)
        parallel.configure(threads=0)
        baseline = [baseline_db.sql(sql) for sql in queries]
        baseline_db.close()

        layouts.configure(storage="mmap")
        parallel.configure(threads=4, morsel_rows=7, min_parallel_rows=1)
        resilience.configure(faults="worker_crash:0.1", fault_seed=seed)
        sharded_db = Database(path=root)
        assert sharded_db.shard_layout("t") is not None
        sharded = [sharded_db.sql(sql) for sql in queries]
        # kill (no close) and recover mid-session: the layout replays
        del sharded_db
        recovered_db = Database(path=root)
        assert recovered_db.shard_layout("t") is not None
        recovered = [recovered_db.sql(sql) for sql in queries]
        recovered_db.close()
    finally:
        parallel.configure(threads=0, morsel_rows=parallel.DEFAULT_MORSEL_ROWS)
        resilience.configure(faults="off")
        scanopt.configure(zone_rows=saved_zone)
        layouts.configure(storage="memory")

    for sql, expected, got, again in zip(queries, baseline, sharded, recovered):
        try:
            tables_bit_identical(got, expected)
            tables_bit_identical(again, expected)
        except AssertionError as exc:
            raise AssertionError(f"sharded engine diverged on: {sql}") from exc
