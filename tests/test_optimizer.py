"""Tests for the rule-based plan optimizer (repro.engine.optimizer).

Covers the satellite correctness fixes of PR 6 — probe AND-merge
inclusivity at equal bounds, balanced-pair output-name stripping, and
the ambiguous-join BindError — plus a per-rule before/after plan-shape
suite driven by ``Plan.explain()``, the ``PRAGMA optimizer`` plumbing
(including flag-aware plan-cache entries), the fused filter+aggregate
kernel's zone metrics and degradability, and the corpus property test
asserting optimizer-on and optimizer-off answers are bit-identical under
threads and fault injection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import resilience
from repro.engine import Database, Table
from repro.engine import parallel, scanopt
from repro.engine.expressions import strip_outer_parens
from repro.engine.planner import RangeProbe, intersect_probes, probe_is_empty
from repro.errors import BindError, TypeMismatchError
from repro.indexing import CrackerIndex
from repro.obs.metrics import MetricsRegistry, set_registry
from tests.test_parallel import tables_bit_identical
from tests.test_sql_differential import random_query, random_table


@pytest.fixture(autouse=True)
def _reset_config():
    """Pin the optimizer on (regardless of REPRO_* env overrides), then
    restore the ambient accel/parallel/governor configuration."""
    accel = scanopt.get_config()
    par = parallel.get_config()
    gov = resilience.get_config()
    saved = (
        accel.dict_encode, accel.zone_rows, accel.plan_cache,
        accel.plan_cache_size, accel.optimizer,
        par.threads, par.morsel_rows, par.min_parallel_rows,
        gov.faults, gov.fault_seed,
    )
    scanopt.configure(
        dict_encode=True,
        zone_rows=scanopt.DEFAULT_ZONE_ROWS,
        plan_cache=True,
        plan_cache_size=scanopt.DEFAULT_PLAN_CACHE_SIZE,
        optimizer=True,
    )
    yield
    scanopt.configure(
        dict_encode=saved[0], zone_rows=saved[1], plan_cache=saved[2],
        plan_cache_size=saved[3], optimizer=saved[4],
    )
    parallel.configure(
        threads=saved[5], morsel_rows=saved[6], min_parallel_rows=saved[7]
    )
    resilience.configure(faults=saved[8] or "off", fault_seed=saved[9])


@pytest.fixture()
def registry():
    fresh = MetricsRegistry()
    old = set_registry(fresh)
    yield fresh
    set_registry(old)


def _db(**tables) -> Database:
    db = Database()
    for name, data in tables.items():
        db.create_table(name, data)
    return db


def _explain_with_notes(db: Database, sql: str) -> str:
    """EXPLAIN output including the ``note: optimizer: ...`` trace lines."""
    return "\n".join(db.execute("EXPLAIN " + sql).column("plan").to_list())


# -- satellite 1: probe AND-merge inclusivity -----------------------------------------


class TestIntersectProbes:
    """Equal bounds with mixed inclusivity must tighten to exclusive."""

    @pytest.mark.parametrize(
        "a_incl,b_incl,expected_incl",
        [(True, True, True), (True, False, False),
         (False, True, False), (False, False, False)],
    )
    def test_equal_low_bounds(self, a_incl, b_incl, expected_incl):
        merged = intersect_probes(
            RangeProbe(column="x", low=5, low_inclusive=a_incl),
            RangeProbe(column="x", low=5, low_inclusive=b_incl),
        )
        assert merged is not None
        assert merged.low == 5 and merged.low_inclusive is expected_incl

    @pytest.mark.parametrize(
        "a_incl,b_incl,expected_incl",
        [(True, True, True), (True, False, False),
         (False, True, False), (False, False, False)],
    )
    def test_equal_high_bounds(self, a_incl, b_incl, expected_incl):
        merged = intersect_probes(
            RangeProbe(column="x", high=7, high_inclusive=a_incl),
            RangeProbe(column="x", high=7, high_inclusive=b_incl),
        )
        assert merged is not None
        assert merged.high == 7 and merged.high_inclusive is expected_incl

    def test_tighter_bound_wins(self):
        merged = intersect_probes(
            RangeProbe(column="x", low=1, high=10),
            RangeProbe(column="x", low=3, high=8, high_inclusive=False),
        )
        assert (merged.low, merged.high) == (3, 8)
        assert merged.low_inclusive is True and merged.high_inclusive is False

    def test_different_columns_do_not_merge(self):
        assert intersect_probes(
            RangeProbe(column="x", low=1), RangeProbe(column="y", low=1)
        ) is None

    def test_incomparable_bounds_do_not_merge(self):
        assert intersect_probes(
            RangeProbe(column="x", low=1), RangeProbe(column="x", low="a")
        ) is None

    def test_probe_is_empty(self):
        assert probe_is_empty(RangeProbe(column="x", low=5, high=4))
        assert probe_is_empty(
            RangeProbe(column="x", low=5, high=5, high_inclusive=False)
        )
        assert not probe_is_empty(RangeProbe(column="x", low=5, high=5))
        assert not probe_is_empty(RangeProbe(column="x", low=5))

    @pytest.mark.parametrize(
        "predicate,expected",
        [("a >= 10 AND a > 10", list(range(11, 21))),
         ("a > 10 AND a >= 10", list(range(11, 21))),
         ("a <= 20 AND a < 20", list(range(10, 20))),
         ("a < 20 AND a <= 20", list(range(10, 20)))],
    )
    def test_engine_equal_bound_pairs_on_index(self, predicate, expected):
        """The four >=/> x <=/<  equal-bound pairs, probed through a real
        adaptive index: the strict bound must win."""
        db = _db(t={"a": list(range(100)), "b": list(range(100))})
        values = np.asarray(db.get_table("t").column("a").data)
        db.register_index("t", "a", CrackerIndex(values))
        base = "SELECT b FROM t WHERE a >= 10 AND a <= 20 AND " + predicate
        rows = db.sql(base + " ORDER BY b").column("b").to_list()
        assert rows == expected


# -- satellite 2: balanced output-name stripping --------------------------------------


class TestStripOuterParens:
    def test_strips_balanced_outer_pair(self):
        assert strip_outer_parens("(a + b)") == "a + b"
        assert strip_outer_parens("((a))") == "a"

    def test_keeps_non_enclosing_parens(self):
        # str.strip("()") would mangle this to "a + b) * (c + d"
        assert strip_outer_parens("((a + b) * (c + d))") == "(a + b) * (c + d)"
        assert strip_outer_parens("(a + b) * (c + d)") == "(a + b) * (c + d)"

    def test_untouched_without_parens(self):
        assert strip_outer_parens("a") == "a"
        assert strip_outer_parens("") == ""

    def test_output_name_keeps_inner_parens(self):
        db = _db(t={"a": [1, 2], "b": [3, 4], "c": [5, 6], "d": [7, 8]})
        result = db.sql("SELECT (a + b) * (c + d) FROM t")
        assert list(result.column_names) == ["(a_+_b)_*_(c_+_d)"]

    def test_group_key_name_matches(self):
        db = _db(t={"a": [1, 1, 2], "b": [3, 3, 4]})
        result = db.sql(
            "SELECT (a + b) * (a + b) FROM t GROUP BY (a + b) * (a + b)"
        )
        assert list(result.column_names) == ["(a_+_b)_*_(a_+_b)"]


# -- satellite 3: ambiguous-join binding ----------------------------------------------


class TestAmbiguousJoinBinding:
    @pytest.fixture()
    def db(self):
        return _db(
            t={"a": [1, 2, 3], "b": [4, 5, 6]},
            u={"a": [1, 2], "label": ["x", "y"]},
        )

    def test_unqualified_ambiguous_raises(self, db):
        with pytest.raises(BindError, match="ambiguous join condition"):
            db.sql("SELECT label FROM t JOIN u ON a = a")

    def test_same_side_qualified_raises(self, db):
        with pytest.raises(BindError, match="both operands resolve"):
            db.sql("SELECT label FROM t JOIN u ON t.a = t.b")

    def test_error_names_the_clause(self, db):
        with pytest.raises(BindError, match="JOIN u ON a = a"):
            db.sql("SELECT label FROM t JOIN u ON a = a")

    def test_qualified_both_sides_still_binds(self, db):
        result = db.sql("SELECT label FROM t JOIN u ON t.a = u.a ORDER BY label")
        assert result.column("label").to_list() == ["x", "y"]


# -- per-rule plan-shape tests via Plan.explain() -------------------------------------


class TestRewriteRules:
    @pytest.fixture()
    def db(self):
        return _db(
            t={
                "id": list(range(100)),
                "a": [i % 10 for i in range(100)],
                "b": [float(i) for i in range(100)],
            },
            u={"k": list(range(10)), "w": [i * 2 for i in range(10)]},
        )

    def test_constant_folding_drops_tautology(self, db):
        text = db.explain("SELECT a FROM t WHERE TRUE AND a < 5")
        assert "Scan(t, filter: (a < 5)" in text
        assert "TRUE" not in text

    def test_contradiction_marks_scan_empty(self, db):
        text = db.explain("SELECT a FROM t WHERE a < 5 AND 1 = 2")
        assert "Scan(t, empty" in text
        assert db.sql("SELECT a FROM t WHERE a < 5 AND 1 = 2").num_rows == 0

    def test_contradiction_still_surfaces_type_errors(self, db):
        db.create_table("strs", {"s": ["x", "y"]})
        with pytest.raises(TypeMismatchError):
            db.sql("SELECT s FROM strs WHERE s < 3 AND 1 = 2")

    def test_duplicate_conjunct_deduped(self, db):
        text = db.explain("SELECT a FROM t WHERE a < 5 AND a < 5")
        assert text.count("a < 5") == 1

    def test_folding_never_hides_column_type_errors(self, db):
        db.create_table("strs", {"s": ["x", "y"]})
        # FALSE AND (s < 3) must still raise, not fold to empty
        with pytest.raises(TypeMismatchError):
            db.sql("SELECT s FROM strs WHERE FALSE AND s < 3")

    def test_pushdown_moves_right_conjunct_below_join(self, db):
        text = db.explain(
            "SELECT a, w FROM t JOIN u ON a = k WHERE w > 4 AND a < 8"
        )
        assert "right filter: (w > 4)" in text
        assert "Scan(t" in text and "filter: (a < 8)" in text
        assert "\nFilter" not in text  # residual filter fully dissolved

    def test_pushdown_keeps_cross_side_conjunct(self, db):
        text = db.explain("SELECT a, w FROM t JOIN u ON a = k WHERE a < w")
        assert "Filter((a < w))" in text

    def test_no_pushdown_below_left_join(self, db):
        text = db.explain(
            "SELECT a, w FROM t LEFT JOIN u ON a = k WHERE w > 4"
        )
        assert "right filter" not in text
        assert "Filter((w > 4))" in text

    def test_probe_merge_tightens_index_range(self, db):
        values = np.asarray(db.get_table("t").column("id").data)
        db.register_index("t", "id", CrackerIndex(values))
        text = db.explain(
            "SELECT a FROM t WHERE id >= 10 AND id <= 20 AND id > 10"
        )
        assert "index: id in (10, 20]" in text
        assert "filter" not in text  # every conjunct merged into the probe

    def test_probe_merge_empty_range_empties_scan(self, db):
        values = np.asarray(db.get_table("t").column("id").data)
        db.register_index("t", "id", CrackerIndex(values))
        text = db.explain("SELECT a FROM t WHERE id > 10 AND id < 10")
        assert "Scan(t, empty" in text
        assert db.sql("SELECT a FROM t WHERE id > 10 AND id < 10").num_rows == 0

    def test_projection_pruning_lists_columns(self, db):
        text = db.explain("SELECT a FROM t WHERE b > 2.0")
        assert "columns: [a, b]" in text

    def test_projection_pruning_star_keeps_all(self, db):
        text = db.explain("SELECT * FROM t WHERE b > 2.0")
        assert "columns:" not in text

    def test_join_reorder_under_global_aggregate(self, db):
        db.create_table(
            "wide", {"k2": [i % 2 for i in range(50)], "v": list(range(50))}
        )
        sql = (
            "SELECT COUNT(*) AS c FROM t "
            "JOIN wide ON a = k2 JOIN u ON a = k"
        )
        text = _explain_with_notes(db, sql)
        # u (unique keys) must join before wide (25 rows per key)
        assert text.index("HashJoin(inner, wide") < text.index(
            "HashJoin(inner, u"
        )
        assert "note: optimizer: join_reorder" in text
        scanopt.configure(optimizer=False)
        unopt = db.sql(sql)
        scanopt.configure(optimizer=True)
        tables_bit_identical(db.sql(sql), unopt)

    def test_no_reorder_when_order_observable(self, db):
        db.create_table(
            "wide", {"k2": [i % 2 for i in range(50)], "v": list(range(50))}
        )
        text = _explain_with_notes(
            db, "SELECT a, v, w FROM t JOIN wide ON a = k2 JOIN u ON a = k"
        )
        assert "join_reorder" not in text
        assert text.index("HashJoin(inner, u") < text.index(
            "HashJoin(inner, wide"
        )

    def test_fusion_replaces_aggregate_over_filtered_scan(self, db):
        text = db.explain("SELECT a, COUNT(*) AS c FROM t WHERE b > 2.0 GROUP BY a")
        assert "FusedAggregate(keys: a" in text
        assert "\nFilter" not in text

    def test_explain_shows_three_distinct_rules(self, db):
        text = _explain_with_notes(
            db, "SELECT COUNT(*) AS c FROM t WHERE TRUE AND b > 2.0 AND b > 2.0"
        )
        for rule in ("constant_fold", "prune", "fuse"):
            assert f"note: optimizer: {rule}" in text

    def test_optimizer_off_leaves_plan_alone(self, db):
        sql = "SELECT a, COUNT(*) AS c FROM t WHERE TRUE AND b > 2.0 GROUP BY a"
        scanopt.configure(optimizer=False)
        text = _explain_with_notes(db, sql)
        assert "optimizer:" not in text
        assert "FusedAggregate" not in text
        assert "TRUE" in text


# -- PRAGMA / plan-cache plumbing ------------------------------------------------------


class TestOptimizerPragma:
    def test_pragma_read_and_set(self):
        db = _db(t={"a": [1, 2, 3]})
        assert db.execute("PRAGMA optimizer").column("value").to_list() == [1]
        db.execute("PRAGMA optimizer=0")
        assert scanopt.get_config().optimizer is False
        db.execute("PRAGMA optimizer=1")
        assert scanopt.get_config().optimizer is True

    def test_plan_cache_entries_are_flag_aware(self):
        """Toggling PRAGMA optimizer must not serve stale optimized plans."""
        db = _db(t={"a": list(range(10)), "b": list(range(10))})
        sql = "SELECT COUNT(*) AS c FROM t WHERE b > 2"
        assert "FusedAggregate" in db.plan(sql).explain()
        db.execute("PRAGMA optimizer=0")
        assert "FusedAggregate" not in db.plan(sql).explain()
        db.execute("PRAGMA optimizer=1")
        assert "FusedAggregate" in db.plan(sql).explain()

    def test_optimizer_metrics_family(self, registry):
        db = _db(t={"a": list(range(10)), "b": list(range(10))})
        db.sql("SELECT COUNT(*) AS c FROM t WHERE TRUE AND b > 2")
        metrics = registry.snapshot()
        assert metrics["counters"].get("optimizer.runs", 0) >= 1
        assert metrics["counters"].get("optimizer.constant_fold", 0) >= 1
        assert metrics["counters"].get("optimizer.fuse", 0) >= 1


# -- fused filter+aggregate kernel -----------------------------------------------------


class TestFusedAggregate:
    def _clustered_db(self, n: int = 4000) -> Database:
        return _db(
            t={
                "id": list(range(n)),
                "a": [i // 100 for i in range(n)],  # clustered: zones prune
                "b": [float(i % 7) for i in range(n)],
            }
        )

    def test_fused_matches_unfused_bit_for_bit(self):
        db = self._clustered_db()
        for sql in (
            "SELECT COUNT(*) AS c, MIN(b) AS lo, MAX(b) AS hi FROM t WHERE a >= 30",
            "SELECT a, COUNT(*) AS c, SUM(b) AS s FROM t WHERE a >= 30 GROUP BY a",
            "SELECT a, AVG(b) AS m, COUNT(DISTINCT b) AS d FROM t "
            "WHERE a >= 10 AND a < 12 GROUP BY a",
        ):
            optimized = db.sql(sql)
            scanopt.configure(optimizer=False)
            baseline = db.sql(sql)
            scanopt.configure(optimizer=True)
            tables_bit_identical(optimized, baseline)

    def test_fused_matches_under_threads(self):
        db = self._clustered_db()
        sql = "SELECT a, SUM(b) AS s, COUNT(*) AS c FROM t WHERE a < 35 GROUP BY a"
        scanopt.configure(optimizer=False)
        baseline = db.sql(sql)
        scanopt.configure(optimizer=True)
        parallel.configure(threads=4, morsel_rows=7, min_parallel_rows=1)
        try:
            tables_bit_identical(db.sql(sql), baseline)
        finally:
            parallel.configure(threads=0, morsel_rows=parallel.DEFAULT_MORSEL_ROWS)

    def test_fused_records_zone_metrics(self, registry):
        db = self._clustered_db()
        scanopt.configure(zone_rows=100)
        assert "FusedAggregate" in db.plan(
            "SELECT COUNT(*) AS c FROM t WHERE a >= 30"
        ).explain()
        result = db.sql("SELECT COUNT(*) AS c FROM t WHERE a >= 30")
        assert result.column("c").to_list() == [1000]
        metrics = registry.snapshot()
        assert metrics["counters"].get("scan.zones_pruned", 0) >= 10

    def test_fused_all_zones_pruned_global_returns_one_row(self):
        db = self._clustered_db()
        scanopt.configure(zone_rows=100)
        result = db.sql("SELECT COUNT(*) AS c, SUM(b) AS s FROM t WHERE a > 1000")
        assert result.column("c").to_list() == [0]
        assert result.column("s").to_list() == [None]

    def test_fused_type_error_parity_when_all_zones_pruned(self):
        db = _db(
            t={"a": [i // 10 for i in range(400)], "s": ["x"] * 400}
        )
        scanopt.configure(zone_rows=100)
        with pytest.raises(TypeMismatchError):
            db.sql("SELECT COUNT(*) AS c FROM t WHERE a > 1000 AND s < 3")

    def test_fused_plan_stays_degradable(self):
        from repro.resilience.degrade import degradable

        db = self._clustered_db()
        plan = db.plan("SELECT COUNT(b) AS c FROM t WHERE a >= 30")
        assert "FusedAggregate" in plan.explain()
        assert degradable(plan)

    def test_explain_analyze_annotates_fused_node(self):
        db = self._clustered_db()
        scanopt.configure(zone_rows=100)
        text = db.explain_analyze(
            "SELECT COUNT(*) AS c FROM t WHERE a >= 30"
        ).render()
        assert "FusedAggregate" in text
        assert "fused: filter + partial aggregate per morsel" in text


# -- corpus property test: optimizer on == off, bit for bit ---------------------------


@pytest.mark.parametrize("seed", range(12))
def test_corpus_bit_identity_optimizer_on_off(seed: int) -> None:
    """Replay the differential-test corpus with the optimizer on — under
    tiny zones, tiny morsels, four threads and worker-crash injection —
    against the optimizer-off serial engine.  Payloads must match byte
    for byte (the plan rewrites may only change how answers are computed,
    never the answers)."""
    rng = np.random.default_rng(4000 + seed)
    table, rows = random_table(rng, n=int(rng.integers(20, 90)))
    queries = [random_query(rng) for _ in range(10)]

    def build_db() -> Database:
        db = Database()
        db.create_table(
            "t",
            Table.from_dict(
                {name: [r[name] for r in rows] for name in ("id", "a", "b", "s")}
            ),
        )
        return db

    try:
        scanopt.configure(optimizer=False, zone_rows=8, plan_cache=True)
        parallel.configure(threads=0)
        resilience.configure(faults="off")
        baseline_db = build_db()
        baseline = [baseline_db.sql(sql) for sql in queries]

        scanopt.configure(optimizer=True)
        parallel.configure(threads=4, morsel_rows=7, min_parallel_rows=1)
        resilience.configure(faults="worker_crash:0.1", fault_seed=seed)
        opt_db = build_db()
        # run twice so the repeat hits the (flag-aware) plan cache
        optimized = [opt_db.sql(sql) for sql in queries]
        repeated = [opt_db.sql(sql) for sql in queries]
    finally:
        parallel.configure(threads=0, morsel_rows=parallel.DEFAULT_MORSEL_ROWS)
        resilience.configure(faults="off")
        scanopt.configure(
            optimizer=True, zone_rows=scanopt.DEFAULT_ZONE_ROWS, plan_cache=True
        )

    for sql, expected, got, again in zip(queries, baseline, optimized, repeated):
        try:
            tables_bit_identical(got, expected)
            tables_bit_identical(again, expected)
        except AssertionError as exc:
            raise AssertionError(f"optimizer changed the answer of: {sql}") from exc


def _sorted_rows(table: Table) -> list[tuple]:
    rows = [
        tuple(table.column(name).to_list()[i] for name in table.column_names)
        for i in range(table.num_rows)
    ]
    return sorted(rows, key=repr)


@pytest.mark.parametrize("seed", range(4))
def test_indexed_corpus_optimizer_on_off(seed: int) -> None:
    """Range queries through an adaptive index with probe merging on vs
    off.  Probe scans return rows in cracking order (implementation-
    defined, like the zone-map contract), so unordered results compare as
    sorted row multisets and ORDER BY queries compare exactly."""
    rng = np.random.default_rng(7000 + seed)
    n = 500
    values = rng.integers(0, 200, n)

    def build_db() -> Database:
        db = Database()
        db.create_table("t", {"id": list(range(n)), "a": [int(v) for v in values]})
        index_values = np.asarray(db.get_table("t").column("a").data)
        db.register_index("t", "a", CrackerIndex(index_values))
        return db

    lows = rng.integers(0, 180, 6)
    for low in lows:
        low = int(low)
        high = low + int(rng.integers(1, 40))
        where = f"WHERE a >= {low} AND a < {high} AND a > {low}"
        unordered = f"SELECT id, a FROM t {where}"
        ordered = f"SELECT id, a FROM t {where} ORDER BY id"

        scanopt.configure(optimizer=True)
        opt_db = build_db()
        got_unordered = opt_db.sql(unordered)
        got_ordered = opt_db.sql(ordered)

        scanopt.configure(optimizer=False)
        base_db = build_db()
        want_unordered = base_db.sql(unordered)
        want_ordered = base_db.sql(ordered)
        scanopt.configure(optimizer=True)

        assert _sorted_rows(got_unordered) == _sorted_rows(want_unordered)
        tables_bit_identical(got_ordered, want_ordered)
