"""Tests for the second extension wave: GK quantiles, partitioned
adaptive indexing, and the declarative exploration language."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExplorationLanguage, ExplorationSession
from repro.errors import ParseError
from repro.indexing import CrackerIndex, PartitionedAdaptiveIndex
from repro.synopses import GKQuantileSketch
from repro.workloads import clustered_column, random_range_queries, sales_table, uniform_column


class TestGKQuantiles:
    def test_rank_error_within_epsilon(self):
        rng = np.random.default_rng(0)
        data = rng.lognormal(0, 1, size=30_000)
        sketch = GKQuantileSketch(epsilon=0.01)
        sketch.extend(data.tolist())
        for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            estimate = sketch.quantile(q)
            true_rank = float((data <= estimate).mean())
            assert abs(true_rank - q) <= 0.03  # 3 * epsilon headroom

    def test_space_is_sublinear(self):
        sketch = GKQuantileSketch(epsilon=0.01)
        sketch.extend(float(i) for i in range(50_000))
        assert sketch.num_entries < 1_000

    def test_sorted_and_reversed_inputs(self):
        for order in (range(5_000), reversed(range(5_000))):
            sketch = GKQuantileSketch(epsilon=0.02)
            sketch.extend(float(v) for v in order)
            median = sketch.quantile(0.5)
            assert abs(median - 2_500) < 250

    def test_extremes(self):
        sketch = GKQuantileSketch(epsilon=0.05)
        sketch.extend([1.0, 2.0, 3.0])
        assert sketch.quantile(0.0) in (1.0, 2.0, 3.0)
        assert sketch.quantile(1.0) == 3.0

    def test_empty_and_invalid(self):
        sketch = GKQuantileSketch()
        with pytest.raises(ValueError):
            sketch.quantile(0.5)
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            GKQuantileSketch(epsilon=2.0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=400))
    def test_property_quantiles_are_observed_values(self, values):
        sketch = GKQuantileSketch(epsilon=0.05)
        sketch.extend(values)
        assert sketch.quantile(0.5) in values


class TestPartitionedIndex:
    @pytest.fixture()
    def clustered(self):
        # clustered data gives zone maps something to prune
        return np.sort(uniform_column(100_000, 0, 1_000_000, seed=0))

    def test_correctness(self, clustered):
        index = PartitionedAdaptiveIndex(clustered, partition_size=10_000)
        for query in random_range_queries(20, (0, 1_000_000), 0.01, seed=1):
            got = set(index.lookup_range(query.low, query.high, True, False).tolist())
            expected = set(
                np.flatnonzero(
                    (clustered >= query.low) & (clustered < query.high)
                ).tolist()
            )
            assert got == expected

    def test_zone_map_prunes_on_sorted_data(self, clustered):
        index = PartitionedAdaptiveIndex(clustered, partition_size=10_000)
        index.lookup_range(0, 50_000, True, False)  # hits 1 partition
        assert index.partitions_pruned >= index.num_partitions - 2
        assert index.partitions_indexed <= 2

    def test_cold_partitions_build_nothing(self, clustered):
        index = PartitionedAdaptiveIndex(clustered, partition_size=10_000)
        for _ in range(5):
            index.lookup_range(0, 40_000, True, False)
        assert index.partitions_indexed <= 1
        hot = index.hot_partitions(k=1)[0]
        assert hot.start == 0

    def test_unsorted_data_still_correct(self):
        values = clustered_column(30_000, num_clusters=5, seed=2)
        index = PartitionedAdaptiveIndex(values, partition_size=4_096)
        for query in random_range_queries(10, (0, 1_000_000), 0.01, seed=3):
            got = set(index.lookup_range(query.low, query.high, True, False).tolist())
            expected = set(
                np.flatnonzero((values >= query.low) & (values < query.high)).tolist()
            )
            assert got == expected

    def test_pruning_saves_work_vs_monolithic(self, clustered):
        partitioned = PartitionedAdaptiveIndex(clustered, partition_size=10_000)
        monolithic = CrackerIndex(clustered.copy())
        for query in random_range_queries(30, (0, 1_000_000), 0.005, seed=4):
            partitioned.lookup_range(query.low, query.high, True, False)
            monolithic.lookup_range(query.low, query.high, True, False)
        # first-touch cost: partitioned only ever cracked the touched blocks
        assert partitioned.work_touched < monolithic.work_touched


class TestExplorationLanguage:
    @pytest.fixture()
    def language(self):
        session = ExplorationSession()
        session.load_table("sales", sales_table(8_000, seed=5))
        return ExplorationLanguage(session)

    def test_explore(self, language):
        result = language.run("EXPLORE sales")
        assert "8,000 rows" in result.text or "8000 rows" in result.text
        assert "suggested charts" in result.text

    def test_steer(self, language):
        result = language.run("STEER sales TOP 2")
        assert len(result.payload) == 2
        for suggestion in result.payload:
            assert language.session.db.sql(suggestion.sql).num_rows >= 0

    def test_facets(self, language):
        result = language.run("FACETS sales WHERE revenue > 400 RATIO 1.2")
        assert result.payload
        assert "over-represented" in result.text

    def test_recommend_views(self, language):
        result = language.run("RECOMMEND VIEWS sales FOR region = 'north' TOP 2")
        assert len(result.payload) == 2
        assert "GROUP BY" in result.text

    def test_segment(self, language):
        result = language.run("SEGMENT sales.price INTO 4")
        assert result.payload.num_segments == 4

    def test_approx_with_rows(self, language):
        result = language.run("APPROX AVG(revenue) FROM sales ROWS 800")
        assert result.payload.rows_scanned <= 800
        assert "±" in result.text

    def test_approx_count_star_where(self, language):
        result = language.run("APPROX COUNT(*) FROM sales WHERE quantity >= 5")
        table = language.session.db.get_table("sales")
        quantity = np.asarray(table.column("quantity").data)
        truth = int((quantity >= 5).sum())
        assert abs(result.payload.estimate.value - truth) / truth < 0.3

    def test_diversify(self, language):
        result = language.run(
            "DIVERSIFY sales BY price, quantity RELEVANCE revenue TOP 4"
        )
        assert result.payload.num_rows == 4

    def test_case_insensitive(self, language):
        result = language.run("steer sales top 1")
        assert len(result.payload) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "FROBNICATE sales",
            "EXPLORE",
            "SEGMENT sales INTO 3",
            "APPROX MEDIAN(x) FROM sales",
            "DIVERSIFY sales BY price",
        ],
    )
    def test_bad_commands_raise(self, language, bad):
        with pytest.raises(ParseError):
            language.run(bad)


class TestJoinInference:
    @pytest.fixture()
    def db(self):
        from repro.engine import Database

        rng = np.random.default_rng(7)
        database = Database()
        n = 300
        database.create_table(
            "orders",
            {
                "order_id": list(range(n)),
                "customer_id": rng.integers(0, 40, size=n).tolist(),
                "amount": rng.integers(0, 40, size=n).tolist(),  # decoy, same type
            },
        )
        database.create_table(
            "customers",
            {
                "customer_id": list(range(40)),
                "loyalty": rng.integers(0, 40, size=40).tolist(),  # decoy
                "name": [f"c{i}" for i in range(40)],
            },
        )
        return database

    def _oracle(self, db):
        orders = db.get_table("orders")
        customers = db.get_table("customers")

        def oracle(left_row: int, right_row: int) -> bool:
            return (
                orders.column("customer_id")[left_row]
                == customers.column("customer_id")[right_row]
            )

        return oracle

    def test_resolves_intended_join(self, db):
        from repro.explore import JoinInferencer

        inferencer = JoinInferencer(db, "orders", "customers", self._oracle(db), seed=1)
        assert len(inferencer.candidates) > 1  # decoys present
        result = inferencer.run(max_labels=40)
        assert result.resolved
        assert result.join.left_column == "customer_id"
        assert result.join.right_column == "customer_id"

    def test_labels_far_below_exhaustive(self, db):
        from repro.explore import JoinInferencer

        inferencer = JoinInferencer(db, "orders", "customers", self._oracle(db), seed=2)
        result = inferencer.run(max_labels=40)
        assert result.labels_used <= 15  # halving converges fast

    def test_inferred_sql_runs(self, db):
        from repro.explore import JoinInferencer

        inferencer = JoinInferencer(db, "orders", "customers", self._oracle(db), seed=3)
        result = inferencer.run()
        sql = inferencer.inferred_sql(result, projection="order_id, name")
        output = db.sql(sql)
        assert output.num_rows == 300  # every order has a matching customer

    def test_all_false_oracle_keeps_some_candidate(self, db):
        from repro.explore import JoinInferencer

        inferencer = JoinInferencer(db, "orders", "customers", lambda a, b: False, seed=4)
        result = inferencer.run(max_labels=30)
        assert result.candidates_remaining  # never eliminates everything

    def test_contradictory_label_raises(self, db, monkeypatch):
        from repro.errors import ReproError
        from repro.explore import JoinInferencer

        inferencer = JoinInferencer(db, "orders", "customers", lambda a, b: True, seed=5)
        # force a probe pair that satisfies NO candidate, with answer True:
        # every candidate becomes inconsistent at once
        orders = db.get_table("orders")
        customers = db.get_table("customers")
        dead_pair = None
        for left_row in range(orders.num_rows):
            for right_row in range(customers.num_rows):
                if not any(
                    inferencer._pair_satisfies(c, left_row, right_row)
                    for c in inferencer.candidates
                ):
                    dead_pair = (left_row, right_row)
                    break
            if dead_pair:
                break
        assert dead_pair is not None
        monkeypatch.setattr(
            inferencer, "_best_probe", lambda candidates, budget=400: dead_pair
        )
        with pytest.raises(ReproError):
            inferencer.run(max_labels=5)

    def test_no_compatible_columns_raise(self):
        from repro.engine import Database
        from repro.errors import ReproError
        from repro.explore import JoinInferencer

        database = Database()
        database.create_table("a", {"x": [1, 2]})
        database.create_table("b", {"y": ["u", "v"]})
        with pytest.raises(ReproError):
            JoinInferencer(database, "a", "b", lambda i, j: True)
