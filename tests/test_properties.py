"""Cross-structure property tests (hypothesis).

Each property pins an invariant the corresponding paper's correctness
argument rests on, over adversarial random inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexing import HybridCrackSortIndex, PartitionedAdaptiveIndex
from repro.prefetch import SemanticRangeCache
from repro.synopses import EquiDepthHistogram, HaarWaveletSynopsis
from repro.viz import m4_reduce


def brute_range(values: np.ndarray, low, high) -> set[int]:
    return set(np.flatnonzero((values >= low) & (values < high)).tolist())


class TestHybridProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(st.integers(0, 200), min_size=4, max_size=150),
        queries=st.lists(
            st.tuples(st.integers(0, 200), st.integers(1, 60)),
            min_size=1,
            max_size=10,
        ),
        flavour=st.sampled_from(["crack", "sort"]),
        partitions=st.integers(1, 6),
    )
    def test_matches_brute_force(self, data, queries, flavour, partitions):
        values = np.asarray(data, dtype=np.int64)
        index = HybridCrackSortIndex(values, num_partitions=partitions, flavour=flavour)
        for low, width in queries:
            got = set(index.lookup_range(low, low + width, True, False).tolist())
            assert got == brute_range(values, low, low + width)


class TestPartitionedProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(st.integers(-100, 100), min_size=1, max_size=200),
        queries=st.lists(
            st.tuples(st.integers(-120, 120), st.integers(0, 80)),
            min_size=1,
            max_size=8,
        ),
        partition_size=st.integers(1, 64),
    )
    def test_matches_brute_force(self, data, queries, partition_size):
        values = np.asarray(data, dtype=np.int64)
        index = PartitionedAdaptiveIndex(values, partition_size=partition_size)
        for low, width in queries:
            got = set(index.lookup_range(low, low + width, True, False).tolist())
            assert got == brute_range(values, low, low + width)


class TestSemanticCacheProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        data=st.lists(
            st.floats(0, 100, allow_nan=False), min_size=1, max_size=150
        ),
        queries=st.lists(
            st.tuples(st.floats(0, 100, allow_nan=False), st.floats(0, 50, allow_nan=False)),
            min_size=1,
            max_size=12,
        ),
    )
    def test_always_matches_direct_scan(self, data, queries):
        values = np.asarray(data, dtype=np.float64)

        def fetch(low, high):
            return np.flatnonzero((values >= low) & (values < high))

        cache = SemanticRangeCache(fetch)
        for low, width in queries:
            high = low + width
            got = set(cache.query_filtered(low, high, values).tolist())
            assert got == brute_range(values, low, high)

    @settings(max_examples=30, deadline=None)
    @given(
        queries=st.lists(
            st.tuples(st.floats(0, 100, allow_nan=False), st.floats(0.1, 50, allow_nan=False)),
            min_size=2,
            max_size=15,
        )
    )
    def test_coverage_intervals_stay_disjoint_and_sorted(self, queries):
        values = np.linspace(0, 100, 50)

        def fetch(low, high):
            return np.flatnonzero((values >= low) & (values < high))

        cache = SemanticRangeCache(fetch)
        for low, width in queries:
            cache.query(low, low + width)
            coverage = cache.coverage()
            for (a_lo, a_hi), (b_lo, b_hi) in zip(coverage[:-1], coverage[1:]):
                assert a_hi <= b_lo, "intervals must stay disjoint and sorted"


class TestM4Properties:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(10, 2_000),
        width=st.integers(1, 50),
        seed=st.integers(0, 100),
    )
    def test_output_subset_and_extremes_kept(self, n, width, seed):
        rng = np.random.default_rng(seed)
        x = np.arange(n, dtype=float)
        y = rng.normal(size=n)
        rx, ry = m4_reduce(x, y, width)
        assert len(rx) <= max(4 * width, n)
        pairs = set(zip(x.tolist(), y.tolist()))
        assert all((a, b) in pairs for a, b in zip(rx.tolist(), ry.tolist()))
        assert float(y.max()) in ry
        assert float(y.min()) in ry
        assert y[0] in ry and y[-1] in ry
        assert np.all(np.diff(rx) >= 0), "output stays in x order"


class TestSynopsisProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(st.floats(-100, 100, allow_nan=False), min_size=2, max_size=300),
        buckets=st.integers(2, 64),
    )
    def test_histogram_total_mass_conserved(self, data, buckets):
        values = np.asarray(data, dtype=np.float64)
        histogram = EquiDepthHistogram(values, num_buckets=buckets)
        full = histogram.estimate_range_count(values.min() - 1, values.max() + 1)
        assert full == pytest.approx(len(values), rel=0.02)

    @settings(max_examples=20, deadline=None)
    @given(
        data=st.lists(st.floats(0, 100, allow_nan=False), min_size=2, max_size=200),
    )
    def test_wavelet_full_coefficients_conserve_mass(self, data):
        values = np.asarray(data, dtype=np.float64)
        synopsis = HaarWaveletSynopsis(values, num_coefficients=128, grid_size=128)
        total = synopsis.estimate_range_count(values.min() - 1, values.max() + 1)
        assert total == pytest.approx(len(values), rel=0.05, abs=0.5)
