"""Tests for the synthetic data and workload generators."""

import numpy as np
import pytest

from repro.workloads import (
    RangeQuery,
    SessionConfig,
    clustered_column,
    correlated_columns,
    generate_sessions,
    grid_table,
    random_range_queries,
    random_walk_series,
    sales_table,
    sequential_range_queries,
    shifting_focus_queries,
    uniform_column,
    zipfian_column,
    zoom_in_queries,
)
from repro.workloads.queries import query_stream


class TestDataGenerators:
    def test_uniform_bounds(self):
        values = uniform_column(10_000, low=5, high=50, seed=0)
        assert values.min() >= 5 and values.max() < 50

    def test_reproducible(self):
        a = uniform_column(100, seed=42)
        b = uniform_column(100, seed=42)
        assert np.array_equal(a, b)

    def test_zipfian_skew(self):
        values = zipfian_column(50_000, num_values=100, skew=1.5, seed=1)
        counts = np.bincount(values, minlength=100)
        assert counts[0] > 10 * max(1, counts[50])

    def test_clustered_concentration(self):
        values = clustered_column(10_000, num_clusters=3, cluster_std=100, seed=2)
        histogram, _ = np.histogram(values, bins=100)
        # most mass in few bins
        top5 = np.sort(histogram)[-5:].sum()
        assert top5 > 0.5 * len(values)

    def test_correlation_level(self):
        x, y = correlated_columns(50_000, correlation=0.8, seed=3)
        observed = float(np.corrcoef(x, y)[0, 1])
        assert abs(observed - 0.8) < 0.05

    def test_random_walks_znormalised(self):
        series = random_walk_series(10, 256, seed=4)
        assert series.shape == (10, 256)
        assert np.allclose(series.mean(axis=1), 0, atol=1e-9)
        assert np.allclose(series.std(axis=1), 1, atol=1e-6)

    def test_grid_table_shapes(self):
        table = grid_table(16, value_fn="gradient")
        assert table.num_rows == 256
        assert set(table.column_names) == {"x", "y", "value"}

    def test_grid_hotspots_have_peaks(self):
        table = grid_table(32, value_fn="hotspots", num_hotspots=2, seed=5)
        values = np.asarray(table.column("value").data)
        assert values.max() > 2.0

    def test_grid_unknown_fn_raises(self):
        with pytest.raises(ValueError):
            grid_table(8, value_fn="mystery")

    def test_sales_table_schema_and_consistency(self):
        table = sales_table(2000, seed=6)
        assert table.num_rows == 2000
        revenue = np.asarray(table.column("revenue").data)
        price = np.asarray(table.column("price").data)
        quantity = np.asarray(table.column("quantity").data)
        discount = np.asarray(table.column("discount").data)
        assert np.allclose(revenue, np.round(price * quantity * (1 - discount), 2))


class TestQueryWorkloads:
    DOMAIN = (0, 1_000_000)

    def test_range_query_validation(self):
        with pytest.raises(ValueError):
            RangeQuery(10, 5)

    def test_random_widths(self):
        queries = random_range_queries(100, self.DOMAIN, selectivity=0.01, seed=0)
        assert len(queries) == 100
        assert all(q.width == 10_000 for q in queries)

    def test_sequential_sweeps(self):
        queries = sequential_range_queries(10, self.DOMAIN, selectivity=0.05)
        starts = [q.low for q in queries]
        assert starts == sorted(starts)
        for a, b in zip(queries[:-1], queries[1:]):
            assert b.low == a.high

    def test_shifting_focus_has_phases(self):
        queries = shifting_focus_queries(
            100, self.DOMAIN, selectivity=0.001, num_phases=4, seed=1
        )
        assert len(queries) == 100
        # within a phase, queries stay inside a narrow region
        phase = [q.low for q in queries[:25]]
        assert max(phase) - min(phase) < 0.2 * self.DOMAIN[1]

    def test_zoom_in_shrinks(self):
        queries = zoom_in_queries(10, self.DOMAIN, shrink=0.5, seed=2)
        widths = [q.width for q in queries]
        assert widths == sorted(widths, reverse=True)

    def test_query_sql_rendering(self):
        q = RangeQuery(10, 20)
        sql = q.to_sql("v", "data")
        assert "v >= 10" in sql and "v < 20" in sql

    def test_stream_dispatch(self):
        for pattern in ("random", "sequential", "shifting", "zoom"):
            queries = list(query_stream(pattern, 5, self.DOMAIN))
            assert len(queries) == 5
        with pytest.raises(ValueError):
            list(query_stream("mystery", 5, self.DOMAIN))


class TestSessions:
    def test_session_length(self):
        sessions = generate_sessions(3, SessionConfig(length=25), seed=0)
        assert len(sessions) == 3
        assert all(len(s) == 25 for s in sessions)

    def test_regions_valid(self):
        config = SessionConfig(length=100, grid_side=16, levels=3)
        for session in generate_sessions(5, config, seed=1):
            for step in session:
                level, x, y = step.region
                assert 0 <= level < config.levels
                side = max(1, config.grid_side >> (config.levels - 1 - level))
                assert 0 <= x < side and 0 <= y < side

    def test_persistence_increases_repetition(self):
        def repeat_rate(persistence, seed=2):
            sessions = generate_sessions(
                10, SessionConfig(length=80, persistence=persistence), seed=seed
            )
            repeats = total = 0
            for session in sessions:
                moves = [s.move for s in session[1:]]
                repeats += sum(a == b for a, b in zip(moves[:-1], moves[1:]))
                total += len(moves) - 1
            return repeats / total

        assert repeat_rate(0.9) > repeat_rate(0.1) + 0.2

    def test_moves_consistent_with_regions(self):
        config = SessionConfig(length=60, persistence=0.5)
        for session in generate_sessions(3, config, seed=3):
            for a, b in zip(session[:-1], session[1:]):
                if b.move == "drill":
                    assert b.region[0] == a.region[0] + 1
                elif b.move == "roll":
                    assert b.region[0] == a.region[0] - 1
