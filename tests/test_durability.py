"""Durability tests: WAL framing, checkpoints, crash recovery.

Covers the PR 8 surface: record encode/decode round trips, the
torn-tail vs mid-log-corruption distinction (a byte-offset truncation
sweep over the final record must never raise; a corrupt record with
bytes after it must), sync policies and their fsync counts, atomic
checkpoints (including recovery from an orphan directory left by a
crash mid-checkpoint), recovery edge cases (empty WAL, checkpoint-only,
WAL-only, double recovery, merge-on-every-write), `close()` semantics,
the PRAGMA settings listing, and the kill–replay property test: a
randomized DML workload crashed at a random injection point must
recover exactly the durable prefix, bit-identical to a Python-mirror
oracle.
"""

from __future__ import annotations

import shutil
import struct

import numpy as np
import pytest

from repro import resilience
from repro.engine import Database, Table
from repro.engine import delta as deltamod
from repro.engine import scanopt
from repro.engine import wal as walmod
from repro.errors import CatalogError, RecoveryError, WalError
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.resilience import SimulatedCrashError
from tests.test_dml import _apply_dml, _python_matches, _random_dml, _rebuild_oracle
from tests.test_parallel import tables_bit_identical
from tests.test_sql_differential import random_table


@pytest.fixture(autouse=True)
def _pin_durability_config():
    """Deterministic durability/write-path config; restore the ambient one."""
    saved_wal = walmod.get_config()
    saved = (saved_wal.wal, saved_wal.wal_sync, saved_wal.wal_batch)
    saved_delta = deltamod.get_config().delta_rows
    gov = resilience.get_config()
    saved_gov = (gov.faults, gov.fault_seed)
    walmod.configure(wal=True, wal_sync="commit", wal_batch=walmod.DEFAULT_WAL_BATCH)
    deltamod.configure(delta_rows=deltamod.DEFAULT_DELTA_ROWS)
    resilience.configure(faults="off", fault_seed=0)
    registry = MetricsRegistry()
    set_registry(registry)
    yield registry
    walmod.configure(wal=saved[0], wal_sync=saved[1], wal_batch=saved[2])
    deltamod.configure(delta_rows=saved_delta)
    resilience.configure(faults=saved_gov[0] or "off", fault_seed=saved_gov[1])


# -- record framing -------------------------------------------------------------------


class TestRecordFraming:
    def test_json_roundtrip(self):
        meta = {"op": "sql", "stmt": "INSERT INTO t VALUES (1, 'déjà')"}
        frame = walmod.encode_record(meta)
        length, crc = struct.unpack_from("<II", frame)
        assert length == len(frame) - 8
        decoded, blob = walmod.decode_payload(frame[8:])
        assert decoded == meta and blob is None

    def test_blob_roundtrip(self):
        blob = bytes(range(256)) * 3
        frame = walmod.encode_record({"op": "create", "table": "t"}, blob)
        decoded, got = walmod.decode_payload(frame[8:])
        assert decoded == {"op": "create", "table": "t"}
        assert got == blob

    def test_reader_roundtrip_and_valid_bytes(self, tmp_path):
        path = tmp_path / "wal.log"
        frames = [walmod.encode_record({"i": i}, b"x" * i) for i in range(5)]
        path.write_bytes(walmod.MAGIC + b"".join(frames))
        records, valid = walmod.read_wal(path)
        assert [m["i"] for m, _ in records] == list(range(5))
        assert valid == path.stat().st_size

    def test_missing_and_short_files(self, tmp_path):
        assert walmod.read_wal(tmp_path / "absent.log") == ([], 0)
        short = tmp_path / "short.log"
        short.write_bytes(walmod.MAGIC[:3])
        assert walmod.read_wal(short) == ([], 0)

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWAL!" + walmod.encode_record({"i": 0}))
        with pytest.raises(RecoveryError, match="magic"):
            walmod.read_wal(path)

    def test_torn_tail_discarded_midlog_raises(self, tmp_path):
        first = walmod.encode_record({"i": 0})
        second = walmod.encode_record({"i": 1})
        path = tmp_path / "wal.log"
        # CRC-bad *final* record: torn tail, cleanly discarded
        broken = bytearray(second)
        broken[-1] ^= 0xFF
        path.write_bytes(walmod.MAGIC + first + bytes(broken))
        records, valid = walmod.read_wal(path)
        assert [m["i"] for m, _ in records] == [0]
        assert valid == len(walmod.MAGIC) + len(first)
        # the same bad record with bytes after it: mid-log corruption
        path.write_bytes(walmod.MAGIC + bytes(broken) + first)
        with pytest.raises(RecoveryError, match="mid-log"):
            walmod.read_wal(path)


# -- persist / reopen -----------------------------------------------------------------


class TestPersistReopen:
    def test_wal_only_open(self, tmp_path):
        with Database(path=tmp_path) as db:
            db.execute("CREATE TABLE t (a INT, s TEXT)")
            db.execute("INSERT INTO t VALUES (1, 'x'), (2, NULL)")
            db.execute("UPDATE t SET a = a + 10 WHERE s = 'x'")
            expected = list(db.sql("SELECT * FROM t ORDER BY a").rows())
        assert not (tmp_path / "CURRENT").exists()  # no checkpoint was taken
        with Database(path=tmp_path) as db2:
            assert list(db2.sql("SELECT * FROM t ORDER BY a").rows()) == expected
            # one record each for CREATE, the (multi-row) INSERT, and UPDATE
            assert db2.durability.last_recovery["records_replayed"] == 3
            assert db2.durability.last_recovery["checkpoint"] is None

    def test_empty_wal_open(self, tmp_path):
        with Database(path=tmp_path) as db:
            assert db.table_names() == []
        with Database(path=tmp_path) as db2:
            assert db2.table_names() == []
            assert db2.durability.last_recovery["records_replayed"] == 0

    def test_programmatic_ddl_snapshots(self, tmp_path):
        with Database(path=tmp_path) as db:
            db.create_table("t", {"a": [1, 2, None], "s": ["x", None, "y"]})
            db.create_table("gone", {"z": [1]})
            db.drop_table("gone")
            db.replace_table("t", Table.from_dict({"a": [7], "s": [None]}))
        with Database(path=tmp_path) as db2:
            assert db2.table_names() == ["t"]
            assert list(db2.get_table("t").rows()) == [(7, None)]

    def test_delete_without_where_replays_as_snapshot(self, tmp_path):
        with Database(path=tmp_path) as db:
            db.create_table("t", {"a": [1, 2, 3]})
            assert db.execute("DELETE FROM t") == 3
        with Database(path=tmp_path) as db2:
            assert db2.get_table("t").num_rows == 0
            assert db2.get_table("t").column_names == ("a",)

    def test_checkpoint_then_reopen_replays_nothing(self, tmp_path):
        with Database(path=tmp_path) as db:
            db.create_table("t", {"a": list(range(20)), "s": ["w"] * 20})
            db.sql("SELECT max(a) FROM t")  # populate cached statistics
            path = db.checkpoint()
            assert "checkpoint-000001" in path
        with Database(path=tmp_path) as db2:
            recovery = db2.durability.last_recovery
            assert recovery["checkpoint"] == 1
            assert recovery["records_replayed"] == 0
            assert list(db2.get_table("t").column("a").to_list()) == list(range(20))

    def test_checkpoint_preserves_statistics_and_dictionary(self, tmp_path):
        scanopt.configure(zone_rows=8)
        try:
            with Database(path=tmp_path) as db:
                db.create_table(
                    "t", {"a": list(range(40)), "s": ["ash", "oak"] * 20}
                )
                stats = db.statistics("t")
                zones = db.zone_map("t")
                db.checkpoint()
            with Database(path=tmp_path) as db2:
                restored = db2.cached_statistics("t")
                assert restored is not None  # loaded from disk, not recomputed
                assert restored.row_count == stats.row_count
                cs, rs = stats.columns["a"], restored.columns["a"]
                assert (rs.min_value, rs.max_value) == (cs.min_value, cs.max_value)
                assert rs.distinct_count == cs.distinct_count
                restored_zones = db2.zone_map("t")
                assert np.array_equal(restored_zones.columns["a"].mins, zones.columns["a"].mins)
                pair = db2.get_table("t").column("s").dictionary()
                assert pair is not None  # codes came off disk, not re-encoded
        finally:
            scanopt.configure(zone_rows=scanopt.DEFAULT_ZONE_ROWS)

    def test_post_checkpoint_writes_replay_on_top(self, tmp_path):
        with Database(path=tmp_path) as db:
            db.create_table("t", {"a": [1]})
            db.checkpoint()
            db.execute("INSERT INTO t VALUES (2)")
        with Database(path=tmp_path) as db2:
            assert sorted(db2.sql("SELECT * FROM t").rows()) == [(1,), (2,)]
            assert db2.durability.last_recovery["records_replayed"] == 1

    def test_double_recovery(self, tmp_path):
        with Database(path=tmp_path) as db:
            db.create_table("t", {"a": [1]})
        db2 = Database(path=tmp_path)
        db2.execute("INSERT INTO t VALUES (2)")
        resilience.configure(faults="wal_post_append:1.0")
        with pytest.raises(SimulatedCrashError):
            db2.execute("INSERT INTO t VALUES (3)")
        resilience.configure(faults="off")
        # post_append under the commit policy: the record was fsynced
        with Database(path=tmp_path) as db3:
            assert sorted(db3.sql("SELECT * FROM t").rows()) == [(1,), (2,), (3,)]

    def test_merge_on_every_write_recovery(self, tmp_path):
        deltamod.configure(delta_rows=1)
        with Database(path=tmp_path) as db:
            db.create_table("t", {"a": [0], "s": ["x"]})
            for i in range(1, 6):
                db.execute(f"INSERT INTO t VALUES ({i}, 'v{i}')")
            db.execute("DELETE FROM t WHERE a = 3")
            expected = list(db.sql("SELECT * FROM t ORDER BY a").rows())
        with Database(path=tmp_path) as db2:
            assert list(db2.sql("SELECT * FROM t ORDER BY a").rows()) == expected
            # merge markers replayed the merges: nothing left pending
            assert db2.delta_store_if_dirty("t") is None

    def test_failed_statements_are_not_logged(self, tmp_path):
        with Database(path=tmp_path) as db:
            db.create_table("t", {"a": [1]})
            with pytest.raises(CatalogError):
                db.execute("INSERT INTO t (nope) VALUES (2)")
            db.execute("INSERT INTO t VALUES (5)")
        with Database(path=tmp_path) as db2:
            assert db2.durability.last_recovery["records_failed"] == 0
            assert sorted(db2.sql("SELECT * FROM t").rows()) == [(1,), (5,)]


# -- close() / context manager --------------------------------------------------------


class TestClose:
    def test_close_is_idempotent_and_blocks_use(self, tmp_path):
        db = Database(path=tmp_path)
        db.execute("CREATE TABLE t (a INT)")
        db.close()
        db.close()
        with pytest.raises(CatalogError, match="closed"):
            db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(CatalogError, match="closed"):
            db.sql("SELECT 1")

    def test_in_memory_close(self):
        with Database() as db:
            db.create_table("t", {"a": [1]})
        with pytest.raises(CatalogError, match="closed"):
            db.sql("SELECT * FROM t")

    def test_close_flushes_unsynced_tail(self, tmp_path):
        walmod.configure(wal_sync="off")
        db = Database(path=tmp_path)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.durability.wal.durable_records == 0
        db.close()
        with Database(path=tmp_path) as db2:
            assert list(db2.sql("SELECT * FROM t").rows()) == [(1,)]


# -- sync policies --------------------------------------------------------------------


class TestSyncPolicies:
    def test_commit_fsyncs_every_record(self, tmp_path, _pin_durability_config):
        db = Database(path=tmp_path)
        base = _pin_durability_config.counter("wal.fsyncs").value
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        assert _pin_durability_config.counter("wal.fsyncs").value - base == 2
        assert db.durability.wal.durable_records == db.durability.wal.records_logged == 2
        db.close()

    def test_batch_fsyncs_every_n(self, tmp_path):
        walmod.configure(wal_sync="batch", wal_batch=3)
        db = Database(path=tmp_path)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.durability.wal.durable_records == 0
        db.execute("INSERT INTO t VALUES (2)")  # third record: batch boundary
        assert db.durability.wal.durable_records == 3
        db.close()

    def test_sync_off_loses_unsynced_records_on_crash(self, tmp_path):
        db = Database(path=tmp_path)
        db.execute("CREATE TABLE t (a INT)")  # commit policy: durable
        walmod.configure(wal_sync="off")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(SimulatedCrashError):
            db.durability.wal.simulate_crash("test power loss")
        with Database(path=tmp_path) as db2:
            assert db2.get_table("t").num_rows == 0  # table survived, row did not

    def test_wal_off_is_checkpoint_only(self, tmp_path):
        walmod.configure(wal=False)
        db = Database(path=tmp_path)
        db.create_table("t", {"a": [1]})
        db.checkpoint()
        db.execute("INSERT INTO t VALUES (2)")
        assert db.durability.wal.records_logged == 0
        db.close()
        with Database(path=tmp_path) as db2:
            assert list(db2.sql("SELECT * FROM t").rows()) == [(1,)]

    def test_wal_pragmas(self, tmp_path):
        with Database(path=tmp_path) as db:
            db.execute("PRAGMA wal_sync=batch")
            db.execute("PRAGMA wal_batch=7")
            config = walmod.get_config()
            assert (config.wal_sync, config.wal_batch) == ("batch", 7)
            with pytest.raises(CatalogError, match="wal_sync"):
                db.execute("PRAGMA wal_sync=sometimes")
            rows = dict()
            for pragma, value, source in db.execute("PRAGMA").rows():
                rows[pragma] = (value, source)
            assert rows["wal_sync"] == ("batch", "pragma")
            assert rows["wal_batch"] == ("7", "pragma")
            assert rows["threads"][1].startswith(("default", "env:"))


# -- torn-write sweep (acceptance criterion) ------------------------------------------


def _frame_offsets(data: bytes) -> list[int]:
    """Byte offset of every record frame in a WAL image."""
    offsets, offset = [], len(walmod.MAGIC)
    while offset + 8 <= len(data):
        (length,) = struct.unpack_from("<I", data, offset)
        offsets.append(offset)
        offset += 8 + length
    return offsets


def test_torn_write_sweep_never_raises(tmp_path):
    """Truncate the WAL at *every* byte offset of the final record: recovery
    must never raise and must restore exactly the statements whose records
    survived intact."""
    source = tmp_path / "db"
    with Database(path=source) as db:
        db.execute("CREATE TABLE t (a INT)")
        for i in range(3):
            db.execute(f"INSERT INTO t VALUES ({i})")
    wal_path = source / walmod.wal_file_name(0)
    image = wal_path.read_bytes()
    last_start = _frame_offsets(image)[-1]
    for cut in range(last_start, len(image) + 1):
        target = tmp_path / f"cut{cut}"
        shutil.copytree(source, target)
        (target / walmod.wal_file_name(0)).write_bytes(image[:cut])
        with Database(path=target) as recovered:
            rows = sorted(recovered.sql("SELECT * FROM t").rows())
            expected = 3 if cut == len(image) else 2
            assert rows == [(i,) for i in range(expected)], f"cut at byte {cut}"


def test_midlog_corruption_raises_recovery_error(tmp_path):
    with Database(path=tmp_path) as db:
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO t VALUES (2)")
    wal_path = tmp_path / walmod.wal_file_name(0)
    image = bytearray(wal_path.read_bytes())
    second_start = _frame_offsets(bytes(image))[1]
    image[second_start + 10] ^= 0xFF  # payload byte of a non-final record
    wal_path.write_bytes(bytes(image))
    with pytest.raises(RecoveryError, match="mid-log"):
        Database(path=tmp_path)


# -- crash injection points -----------------------------------------------------------


class TestCrashPoints:
    def test_pre_fsync_loses_the_record(self, tmp_path):
        db = Database(path=tmp_path)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        resilience.configure(faults="wal_pre_fsync:1.0")
        with pytest.raises(SimulatedCrashError):
            db.execute("INSERT INTO t VALUES (2)")
        with pytest.raises(WalError, match="closed"):
            db.durability.wal.append({"op": "merge", "table": "t", "reason": "x"})
        resilience.configure(faults="off")
        with Database(path=tmp_path) as db2:
            assert sorted(db2.sql("SELECT * FROM t").rows()) == [(1,)]

    def test_torn_write_leaves_recoverable_prefix(self, tmp_path):
        db = Database(path=tmp_path)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        resilience.configure(faults="wal_torn_write:1.0")
        with pytest.raises(SimulatedCrashError, match="torn"):
            db.execute("INSERT INTO t VALUES (2)")
        resilience.configure(faults="off")
        wal_path = tmp_path / walmod.wal_file_name(0)
        records, valid = walmod.read_wal(wal_path)
        assert len(records) == 2 and valid < wal_path.stat().st_size
        with Database(path=tmp_path) as db2:
            assert sorted(db2.sql("SELECT * FROM t").rows()) == [(1,)]
            # recovery truncated the torn fragment away
            assert wal_path.stat().st_size == valid

    def test_crash_mid_checkpoint_recovers(self, tmp_path):
        db = Database(path=tmp_path)
        db.create_table("t", {"a": [1, 2]})
        resilience.configure(faults="crash_mid_checkpoint:1.0")
        with pytest.raises(SimulatedCrashError):
            db.checkpoint()
        resilience.configure(faults="off")
        with Database(path=tmp_path) as db2:
            assert sorted(db2.sql("SELECT * FROM t").rows()) == [(1,), (2,)]
            db2.execute("INSERT INTO t VALUES (3)")
        with Database(path=tmp_path) as db3:
            assert sorted(db3.sql("SELECT * FROM t").rows()) == [(1,), (2,), (3,)]

    def test_crash_mid_merge_recovers(self, tmp_path):
        deltamod.configure(delta_rows=1)
        db = Database(path=tmp_path)
        db.execute("CREATE TABLE t (a INT)")
        resilience.configure(faults="crash_mid_merge:1.0")
        with pytest.raises(SimulatedCrashError):
            db.execute("INSERT INTO t VALUES (7)")
        resilience.configure(faults="off")
        with Database(path=tmp_path) as db2:
            # the DML record and merge marker were durable (commit policy)
            assert list(db2.sql("SELECT * FROM t").rows()) == [(7,)]


# -- kill–replay property test (acceptance criterion) ---------------------------------


_CRASH_SPECS = [
    "wal_pre_fsync:0.2",
    "wal_post_append:0.2",
    "wal_torn_write:0.2",
    "crash_mid_merge:0.3",
    "crash_mid_checkpoint:0.8",
    "wal_pre_fsync:0.1,wal_post_append:0.1,wal_torn_write:0.1,"
    "crash_mid_merge:0.15,crash_mid_checkpoint:0.5",
]


def _mirror_only(rows: list[dict], op: tuple) -> None:
    """Apply one DML op to the Python mirror alone (no engine call)."""
    kind = op[0]
    if kind == "insert":
        rows.extend({"id": r[0], "a": r[1], "b": r[2], "s": r[3]} for r in op[1])
    elif kind == "delete":
        _, column, cmp_op, value = op
        rows[:] = [r for r in rows if not _python_matches(r, column, cmp_op, value)]
    else:
        _, k, column, cmp_op, value = op
        for row in rows:
            if _python_matches(row, column, cmp_op, value) and row["a"] is not None:
                row["a"] += k


def _assert_matches_mirror(db: Database, mirror: list[dict]) -> None:
    got = db.get_table("t")
    if not mirror:
        assert got.num_rows == 0
        return
    tables_bit_identical(got, _rebuild_oracle(mirror).get_table("t"))


@pytest.mark.parametrize("seed", range(10))
def test_kill_replay_property(tmp_path, seed):
    """Crash a randomized DML workload at a random injection point; recovery
    must restore exactly the durable prefix, bit-identical to the oracle.

    Bookkeeping: under the ``commit`` sync policy a statement is durable
    iff its WAL record index (sampled before execution) is below the dead
    log's ``durable_records``; statements persisted by a successful
    checkpoint are durable regardless of the log that followed.
    """
    rng = np.random.default_rng(9000 + seed)
    table, rows = random_table(rng, n=int(rng.integers(10, 30)))
    script = []
    next_id = len(rows)
    for _ in range(20):
        op, next_id = _random_dml(rng, next_id)
        script.append(op)
    crash_spec = _CRASH_SPECS[seed % len(_CRASH_SPECS)]
    deltamod.configure(delta_rows=int(rng.choice([1, 4, 1_000_000])))

    db = Database(path=tmp_path)
    db.create_table("t", table)
    mirror = [dict(r) for r in rows]
    snaps = [[dict(r) for r in mirror]]  # snaps[k] = state after k statements
    checkpointed = 0  # statements baked into the last successful checkpoint
    records_before: list[int] = []  # per post-checkpoint statement, on the live log
    resilience.configure(faults=crash_spec, fault_seed=seed)
    crashed = False
    expected: list[dict] | None = None
    try:
        for j, op in enumerate(script):
            if rng.random() < 0.2:
                try:
                    db.checkpoint()
                    checkpointed = j
                    records_before = []
                except SimulatedCrashError:
                    crashed = True
                    expected = snaps[j]  # no statement was in flight
                    break
            records_before.append(db.durability.wal.records_logged)
            try:
                _apply_dml(db, mirror, op)
            except SimulatedCrashError:
                crashed = True
                durable = db.durability.wal.durable_records
                extra = sum(1 for r in records_before if r < durable)
                k = checkpointed + extra
                expected = [dict(r) for r in snaps[min(k, j)]]
                if k == j + 1:  # the crashing statement itself was durable
                    _mirror_only(expected, op)
                break
            snaps.append([dict(r) for r in mirror])
    finally:
        resilience.configure(faults="off")
    if not crashed:
        db.close()
        expected = mirror
    with Database(path=tmp_path) as recovered:
        _assert_matches_mirror(recovered, expected)
        recovered.flush_deltas()  # merge invariance: logical state unchanged
        _assert_matches_mirror(recovered, expected)
