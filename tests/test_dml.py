"""DML and write-path tests (delta store, tombstones, incremental merge).

Covers the PR 7 surface: constant-expression INSERT values (the old
"must be literals" bug), typed coercion across every dtype pair (the
silent 4.5→4 / 123→'123' bugs), multi-row and partial-column inserts,
tombstone deletes, vectorised updates, catalog-version / plan-cache
semantics of append vs merge, dictionary-code and zone-map maintenance
across merges, index feeding through the engine's write path, and a
randomised DML corpus replayed against a rebuild-from-scratch oracle —
bit-identical under threads and fault injection, at merge-per-write and
delta-heavy thresholds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import resilience
from repro.engine import Database, Table
from repro.engine import delta as deltamod
from repro.engine import parallel, scanopt
from repro.engine.types import DataType
from repro.errors import CatalogError, TypeMismatchError
from repro.indexing import CrackerIndex
from repro.indexing.updates import UpdatableCrackerIndex
from repro.obs.metrics import MetricsRegistry, set_registry
from tests.test_parallel import tables_bit_identical
from tests.test_sql_differential import random_query, random_table


@pytest.fixture(autouse=True)
def _reset_write_path():
    """Pin a deterministic write-path/accel config, restore the ambient one."""
    saved_delta = deltamod.get_config().delta_rows
    accel = scanopt.get_config()
    par = parallel.get_config()
    gov = resilience.get_config()
    saved = (
        accel.dict_encode, accel.zone_rows, accel.plan_cache, accel.plan_cache_size,
        par.threads, par.morsel_rows, par.min_parallel_rows,
        gov.faults, gov.fault_seed,
    )
    deltamod.configure(delta_rows=deltamod.DEFAULT_DELTA_ROWS)
    scanopt.configure(
        dict_encode=True,
        zone_rows=scanopt.DEFAULT_ZONE_ROWS,
        plan_cache=True,
        plan_cache_size=scanopt.DEFAULT_PLAN_CACHE_SIZE,
    )
    yield
    deltamod.configure(delta_rows=saved_delta)
    scanopt.configure(
        dict_encode=saved[0], zone_rows=saved[1],
        plan_cache=saved[2], plan_cache_size=saved[3],
    )
    parallel.configure(
        threads=saved[4], morsel_rows=saved[5], min_parallel_rows=saved[6]
    )
    resilience.configure(faults=saved[7] or "off", fault_seed=saved[8])


def _db(**tables) -> Database:
    db = Database()
    for name, data in tables.items():
        db.create_table(name, data)
    return db


# -- INSERT accepts constant expressions (regression) ---------------------------------


class TestInsertConstantExpressions:
    @pytest.mark.parametrize(
        "value_sql, expected",
        [
            ("-2", -2),
            ("(1+1)", 2),
            ("2 * 3 + 1", 7),
            ("-(2 + 3)", -5),
            ("NULL", None),
        ],
    )
    def test_int_expressions(self, value_sql, expected):
        db = _db(t={"x": [1]})
        assert db.execute(f"INSERT INTO t (x) VALUES ({value_sql})") == 1
        assert db.get_table("t").column("x").to_list() == [1, expected]

    @pytest.mark.parametrize(
        "value_sql, expected",
        [("-1.5", -1.5), ("(0.5 + 0.25)", 0.75), ("-0.0", 0.0)],
    )
    def test_float_expressions(self, value_sql, expected):
        db = _db(t={"y": [1.0]})
        db.execute(f"INSERT INTO t (y) VALUES ({value_sql})")
        assert expected in db.get_table("t").column("y").to_list()

    def test_column_reference_rejected(self):
        db = _db(t={"x": [1]})
        with pytest.raises(CatalogError, match="constant"):
            db.execute("INSERT INTO t (x) VALUES (x + 1)")


# -- typed coercion (regression: silent truncation / stringification) -----------------


class TestInsertCoercion:
    def test_fractional_float_into_int_raises(self):
        db = _db(t={"x": [1]})
        with pytest.raises(TypeMismatchError):
            db.execute("INSERT INTO t (x) VALUES (4.5)")
        assert db.get_table("t").column("x").to_list() == [1]

    def test_integral_float_into_int_ok(self):
        db = _db(t={"x": [1]})
        db.execute("INSERT INTO t (x) VALUES (4.0)")
        assert db.get_table("t").column("x").to_list() == [1, 4]
        assert db.get_table("t").column("x").dtype is DataType.INT64

    def test_int_into_float_widens(self):
        db = _db(t={"y": [1.5]})
        db.execute("INSERT INTO t (y) VALUES (3)")
        assert db.get_table("t").column("y").to_list() == [1.5, 3.0]
        assert db.get_table("t").column("y").dtype is DataType.FLOAT64

    def test_number_into_string_raises(self):
        db = _db(u={"s": ["a"]})
        with pytest.raises(TypeMismatchError):
            db.execute("INSERT INTO u (s) VALUES (123)")
        assert db.get_table("u").column("s").to_list() == ["a"]

    def test_string_into_numeric_raises(self):
        db = _db(t={"x": [1], "y": [1.0]})
        with pytest.raises(TypeMismatchError):
            db.execute("INSERT INTO t (x, y) VALUES ('7', 1.0)")
        with pytest.raises(TypeMismatchError):
            db.execute("INSERT INTO t (x, y) VALUES (7, '1.0')")

    def test_bool_column_accepts_only_bools(self):
        db = _db(t={"f": [True]})
        db.execute("INSERT INTO t (f) VALUES (FALSE)")
        assert db.get_table("t").column("f").to_list() == [True, False]
        with pytest.raises(TypeMismatchError):
            db.execute("INSERT INTO t (f) VALUES (1)")

    def test_bool_into_int_raises(self):
        db = _db(t={"x": [1]})
        with pytest.raises(TypeMismatchError):
            db.execute("INSERT INTO t (x) VALUES (TRUE)")

    def test_null_accepted_everywhere(self):
        db = _db(t={"x": [1], "y": [1.0], "s": ["a"], "f": [True]})
        db.execute("INSERT INTO t (x, y, s, f) VALUES (NULL, NULL, NULL, NULL)")
        assert db.get_table("t").row(1) == (None, None, None, None)


class TestUpdateCoercion:
    def test_fractional_float_into_int_raises(self):
        db = _db(t={"x": [1, 2]})
        with pytest.raises(TypeMismatchError):
            db.execute("UPDATE t SET x = 2.5")
        assert db.get_table("t").column("x").to_list() == [1, 2]

    def test_int_into_float_widens(self):
        db = _db(t={"y": [1.5, 2.5]})
        db.execute("UPDATE t SET y = 7 WHERE y > 2")
        assert db.get_table("t").column("y").to_list() == [1.5, 7.0]

    def test_cross_kind_raises(self):
        db = _db(t={"x": [1], "s": ["a"]})
        with pytest.raises(TypeMismatchError):
            db.execute("UPDATE t SET s = 5")
        with pytest.raises(TypeMismatchError):
            db.execute("UPDATE t SET x = 'seven'")

    def test_update_preserves_column_and_row_order(self):
        db = _db(t={"a": [1, 2, 3], "b": [10.0, 20.0, 30.0], "c": ["x", "y", "z"]})
        db.execute("UPDATE t SET b = b + 1 WHERE a >= 2")
        table = db.get_table("t")
        assert table.column_names == ("a", "b", "c")
        assert table.column("b").to_list() == [10.0, 21.0, 31.0]


# -- multi-row / partial-column / NULL-fill inserts -----------------------------------


class TestInsertShapes:
    def test_multi_row_values(self):
        db = _db(t={"x": [0], "s": ["z"]})
        assert db.execute(
            "INSERT INTO t (x, s) VALUES (1, 'a'), (2, 'b'), (3, NULL)"
        ) == 3
        assert db.sql("SELECT COUNT(*) AS n FROM t").to_dicts() == [{"n": 4}]
        assert db.get_table("t").column("s").to_list() == ["z", "a", "b", None]

    def test_partial_columns_fill_nulls(self):
        db = _db(t={"x": [1], "y": [1.0], "s": ["a"]})
        db.execute("INSERT INTO t (s) VALUES ('b')")
        assert db.get_table("t").row(1) == (None, None, "b")

    def test_width_mismatch_and_unknown_column(self):
        db = _db(t={"x": [1], "y": [2.0]})
        with pytest.raises(CatalogError, match="width"):
            db.execute("INSERT INTO t (x, y) VALUES (1)")
        with pytest.raises(CatalogError, match="unknown column"):
            db.execute("INSERT INTO t (x, z) VALUES (1, 2)")

    def test_insert_into_empty_created_table(self):
        db = Database()
        db.execute("CREATE TABLE t (x INT, s TEXT)")
        db.execute("INSERT INTO t VALUES (5, 'five'), (6, 'six')")
        assert db.get_table("t").to_dicts() == [
            {"x": 5, "s": "five"},
            {"x": 6, "s": "six"},
        ]


# -- delta-store mechanics ------------------------------------------------------------


class TestDeltaMechanics:
    def test_append_stays_pending_below_threshold(self):
        db = _db(t={"x": [1, 2, 3]})
        db.execute("PRAGMA delta_rows=10")
        main = db.main_table("t")
        db.execute("INSERT INTO t (x) VALUES (4), (5)")
        assert db.main_table("t") is main  # the columnar main did not move
        store = db.delta_store_if_dirty("t")
        assert store is not None and store.pending_inserts == 2
        assert db.sql("SELECT SUM(x) AS s FROM t").to_dicts() == [{"s": 15}]

    def test_threshold_triggers_merge(self):
        db = _db(t={"x": [1, 2, 3]})
        db.execute("PRAGMA delta_rows=3")
        db.execute("INSERT INTO t (x) VALUES (4), (5)")
        assert db.delta_store_if_dirty("t") is not None
        db.execute("INSERT INTO t (x) VALUES (6)")  # pressure reaches 3
        assert db.delta_store_if_dirty("t") is None
        assert db.main_table("t").column("x").to_list() == [1, 2, 3, 4, 5, 6]

    def test_pragma_zero_merges_immediately(self):
        db = _db(t={"x": [1]})
        db.execute("PRAGMA delta_rows=1000")
        db.execute("INSERT INTO t (x) VALUES (2)")
        assert db.delta_store_if_dirty("t") is not None
        db.execute("PRAGMA delta_rows=0")  # lowering the threshold flushes
        assert db.delta_store_if_dirty("t") is None
        read = db.execute("PRAGMA delta_rows")
        assert isinstance(read, Table) and read.column("value").to_list() == [0]

    def test_delete_marks_tombstones_without_copying(self):
        db = _db(t={"x": list(range(10))})
        db.execute("PRAGMA delta_rows=100")
        main = db.main_table("t")
        assert db.execute("DELETE FROM t WHERE x >= 7") == 3
        assert db.main_table("t") is main  # no filtered copy was built
        store = db.delta_store_if_dirty("t")
        assert store is not None and store.main_tombstones == 3
        assert db.sql("SELECT COUNT(*) AS n FROM t").to_dicts() == [{"n": 7}]
        # deleting already-dead rows affects nothing
        assert db.execute("DELETE FROM t WHERE x >= 7") == 0

    def test_delete_pending_delta_rows(self):
        db = _db(t={"x": [1, 2]})
        db.execute("PRAGMA delta_rows=100")
        db.execute("INSERT INTO t (x) VALUES (10), (11)")
        assert db.execute("DELETE FROM t WHERE x = 10") == 1
        assert db.sql("SELECT x FROM t ORDER BY x").column("x").to_list() == [1, 2, 11]
        db.flush_deltas("t")
        assert db.main_table("t").column("x").to_list() == [1, 2, 11]

    def test_delete_all_resets(self):
        db = _db(t={"x": [1, 2, 3]})
        db.execute("PRAGMA delta_rows=100")
        db.execute("INSERT INTO t (x) VALUES (4)")
        assert db.execute("DELETE FROM t") == 4
        assert db.get_table("t").num_rows == 0
        assert db.delta_store_if_dirty("t") is None

    def test_update_applies_to_pending_rows(self):
        db = _db(t={"x": [1, 2], "s": ["a", "b"]})
        db.execute("PRAGMA delta_rows=100")
        db.execute("INSERT INTO t (x, s) VALUES (3, 'c')")
        db.execute("UPDATE t SET x = x * 10 WHERE x >= 2")
        assert db.sql("SELECT x FROM t ORDER BY x").column("x").to_list() == [
            1, 20, 30,
        ]

    def test_catalog_version_append_vs_structural(self):
        db = _db(t={"x": [1, 2, 3]})
        db.execute("PRAGMA delta_rows=100")
        sql = "SELECT COUNT(*) AS n FROM t WHERE x > 0"
        cached = db.plan(sql)
        version = db.catalog_version
        db.execute("INSERT INTO t (x) VALUES (4)")     # append: no bump
        db.execute("DELETE FROM t WHERE x = 1")        # tombstone: no bump
        db.flush_deltas("t")                           # pure data change: no bump
        assert db.catalog_version == version
        assert db.plan(sql) is cached                  # plan cache survived it all
        assert db.sql(sql).to_dicts() == [{"n": 3}]
        db.replace_table("t", Table.from_dict({"x": [9]}))  # structural
        assert db.catalog_version > version
        assert db.plan(sql) is not cached

    def test_statistics_absorb_pending_writes(self):
        db = _db(t={"x": [1, 2, 3]})
        db.execute("PRAGMA delta_rows=100")
        assert db.statistics("t").row_count == 3
        db.execute("INSERT INTO t (x) VALUES (10), (NULL)")
        stats = db.statistics("t")
        assert stats.row_count == 5
        assert stats.column("x").max_value == 10
        assert stats.column("x").null_count == 1
        db.execute("DELETE FROM t WHERE x = 2")
        assert db.statistics("t").row_count == 4
        db.flush_deltas("t")
        exact = db.statistics("t")
        assert exact.row_count == 4 and exact.column("x").max_value == 10

    def test_zone_map_extended_across_merge(self):
        scanopt.configure(zone_rows=8)
        n = 64
        db = _db(t={"x": list(range(n))})
        db.execute("PRAGMA delta_rows=1000")
        before = db.zone_map("t")
        assert before.row_count == n
        db.execute("INSERT INTO t (x) VALUES " + ", ".join(
            f"({v})" for v in range(n, n + 20)
        ))
        db.flush_deltas("t")
        after = db.zone_map("t")
        assert after.row_count == n + 20
        # complete old zones were spliced through unchanged
        zones = after.column("x")
        assert zones is not None
        assert int(zones.mins[0]) == 0 and int(zones.maxs[0]) == 7
        assert int(zones.maxs[-1]) == n + 19
        assert db.sql(
            "SELECT COUNT(*) AS n FROM t WHERE x >= 60 AND x < 70"
        ).to_dicts() == [{"n": 10}]

    def test_merge_metrics_and_span(self):
        fresh = MetricsRegistry()
        old = set_registry(fresh)
        try:
            db = _db(t={"x": [1]})
            db.execute("PRAGMA delta_rows=100")
            db.execute("INSERT INTO t (x) VALUES (2), (3)")
            db.flush_deltas("t")
            assert fresh.counter("write.inserts").value == 1
            assert fresh.counter("write.insert_rows").value == 2
            assert fresh.counter("write.merges").value == 1
            assert fresh.counter("write.merge_rows").value == 2
        finally:
            set_registry(old)


# -- dictionary-encoded STRING columns across DML -------------------------------------


class TestDictEncodedDML:
    def test_insert_maintains_codes_across_merge(self):
        db = _db(t={"s": ["b", "a", "b"], "x": [1, 2, 3]})
        assert db.main_table("t").column("s").dictionary() is not None
        db.execute("PRAGMA delta_rows=100")
        db.execute("INSERT INTO t (s, x) VALUES ('c', 4), ('a', 5), (NULL, 6)")
        # pre-merge: scans union the delta tail
        assert db.sql("SELECT COUNT(*) AS n FROM t WHERE s = 'a'").to_dicts() == [
            {"n": 2}
        ]
        db.flush_deltas("t")
        column = db.main_table("t").column("s")
        pair = column.dictionary()
        assert pair is not None  # the merge maintained codes incrementally
        codes, dictionary = pair
        assert list(dictionary) == ["a", "b", "c"]
        assert column.to_list() == ["b", "a", "b", "c", "a", None]
        assert codes[-1] == -1  # null slot
        assert db.sql("SELECT COUNT(*) AS n FROM t WHERE s = 'a'").to_dicts() == [
            {"n": 2}
        ]

    def test_merge_reuses_dictionary_when_no_new_values(self):
        db = _db(t={"s": ["a", "b"]})
        db.execute("PRAGMA delta_rows=100")
        db.execute("INSERT INTO t (s) VALUES ('a')")
        db.flush_deltas("t")
        pair = db.main_table("t").column("s").dictionary()
        assert pair is not None and list(pair[1]) == ["a", "b"]

    def test_delete_and_update_on_encoded_column(self):
        db = _db(t={"s": ["a", "b", "c", "a"], "x": [1, 2, 3, 4]})
        db.execute("PRAGMA delta_rows=100")
        db.execute("DELETE FROM t WHERE s = 'b'")
        assert db.sql("SELECT s FROM t ORDER BY x").column("s").to_list() == [
            "a", "c", "a",
        ]
        db.execute("UPDATE t SET s = 'z' WHERE x >= 3")
        assert db.sql("SELECT s FROM t ORDER BY x").column("s").to_list() == [
            "a", "z", "z",
        ]
        db.flush_deltas("t")
        # post-compaction the column is re-encoded by the catalog's policy
        assert db.sql("SELECT COUNT(*) AS n FROM t WHERE s = 'z'").to_dicts() == [
            {"n": 2}
        ]


# -- index maintenance through the write path -----------------------------------------


class TestIndexWritePath:
    def test_updatable_index_absorbs_engine_inserts(self):
        db = _db(t={"x": [3.0, 1.0, 2.0, 5.0]})
        db.execute("PRAGMA delta_rows=100")
        db.register_index("t", "x", UpdatableCrackerIndex(np.array([3.0, 1.0, 2.0, 5.0])))
        db.execute("INSERT INTO t (x) VALUES (4.0), (0.5)")
        assert db.index_for("t", "x") is not None  # stayed registered
        plan = db.plan("SELECT x FROM t WHERE x > 2.0")
        assert "index" in plan.explain()
        got = sorted(db.sql("SELECT x FROM t WHERE x > 2.0").column("x").to_list())
        assert got == [3.0, 4.0, 5.0]

    def test_updatable_index_sees_engine_deletes(self):
        db = _db(t={"x": [1.0, 2.0, 3.0, 4.0]})
        db.execute("PRAGMA delta_rows=100")
        db.register_index("t", "x", UpdatableCrackerIndex(np.array([1.0, 2.0, 3.0, 4.0])))
        db.execute("DELETE FROM t WHERE x = 3.0")
        got = sorted(db.sql("SELECT x FROM t WHERE x >= 2.0").column("x").to_list())
        assert got == [2.0, 4.0]

    def test_plain_index_dropped_on_insert(self):
        db = _db(t={"x": [1.0, 2.0, 3.0]})
        db.execute("PRAGMA delta_rows=100")
        db.register_index("t", "x", CrackerIndex(np.array([1.0, 2.0, 3.0])))
        db.execute("INSERT INTO t (x) VALUES (4.0)")
        assert db.index_for("t", "x") is None  # cannot absorb inserts
        got = sorted(db.sql("SELECT x FROM t WHERE x > 1.5").column("x").to_list())
        assert got == [2.0, 3.0, 4.0]

    def test_register_index_flushes_pending_delta(self):
        db = _db(t={"x": [2.0, 1.0]})
        db.execute("PRAGMA delta_rows=100")
        db.execute("INSERT INTO t (x) VALUES (3.0)")
        assert db.delta_store_if_dirty("t") is not None
        values = np.asarray(db.get_table("t").column("x").data, dtype=float)
        db.register_index("t", "x", CrackerIndex(values))
        assert db.delta_store_if_dirty("t") is None  # merged before registration
        got = sorted(db.sql("SELECT x FROM t WHERE x >= 2.0").column("x").to_list())
        assert got == [2.0, 3.0]

    def test_update_drops_index_on_assigned_column_only(self):
        db = _db(t={"x": [1.0, 2.0], "y": [5.0, 6.0]})
        db.register_index("t", "x", CrackerIndex(np.array([1.0, 2.0])))
        db.register_index("t", "y", CrackerIndex(np.array([5.0, 6.0])))
        db.execute("UPDATE t SET x = x + 1")
        assert db.index_for("t", "x") is None
        assert db.index_for("t", "y") is not None
        assert sorted(db.sql("SELECT x FROM t WHERE x > 0").column("x").to_list()) == [
            2.0, 3.0,
        ]


# -- rebuild-oracle corpus: bit identity under threads + faults -----------------------


def _python_matches(row: dict, column: str, op: str, value) -> bool:
    current = row[column]
    if current is None:
        return False
    if op == "=":
        return current == value
    if op == "<":
        return current < value
    return current >= value  # ">="


def _apply_dml(db: Database, rows: list[dict], op: tuple) -> None:
    """Run one DML op on the engine and mirror it on plain Python rows."""
    kind = op[0]
    if kind == "insert":
        values = op[1]  # list of (id, a, b, s) tuples
        parts = []
        for row in values:
            rendered = []
            for v in row:
                if v is None:
                    rendered.append("NULL")
                elif isinstance(v, str):
                    rendered.append(f"'{v}'")
                else:
                    rendered.append(repr(v))
            parts.append("(" + ", ".join(rendered) + ")")
        db.execute(f"INSERT INTO t (id, a, b, s) VALUES {', '.join(parts)}")
        rows.extend(
            {"id": r[0], "a": r[1], "b": r[2], "s": r[3]} for r in values
        )
    elif kind == "delete":
        _, column, cmp_op, value = op
        literal = f"'{value}'" if isinstance(value, str) else repr(value)
        db.execute(f"DELETE FROM t WHERE {column} {cmp_op} {literal}")
        rows[:] = [r for r in rows if not _python_matches(r, column, cmp_op, value)]
    else:  # update: SET a = a + k WHERE <col> <op> <val>
        _, k, column, cmp_op, value = op
        literal = f"'{value}'" if isinstance(value, str) else repr(value)
        db.execute(f"UPDATE t SET a = a + {k} WHERE {column} {cmp_op} {literal}")
        for row in rows:
            if _python_matches(row, column, cmp_op, value) and row["a"] is not None:
                row["a"] = row["a"] + k


def _random_dml(rng: np.random.Generator, next_id: int) -> tuple[tuple, int]:
    kind = rng.random()
    columns = [("id", int(rng.integers(0, next_id + 5))), ("a", int(rng.integers(-20, 20)))]
    column, value = columns[int(rng.integers(0, len(columns)))]
    cmp_op = str(rng.choice(["=", "<", ">="]))
    if kind < 0.5:
        count = int(rng.integers(1, 4))
        values = []
        for _ in range(count):
            values.append(
                (
                    next_id,
                    int(rng.integers(-20, 20)) if rng.random() > 0.15 else None,
                    round(float(rng.uniform(-5, 5)), 3) if rng.random() > 0.15 else None,
                    str(rng.choice(["ash", "birch", "cedar", "oak"]))
                    if rng.random() > 0.15
                    else None,
                )
            )
            next_id += 1
        return ("insert", values), next_id
    if kind < 0.75:
        return ("delete", column, cmp_op, value), next_id
    return ("update", int(rng.integers(-3, 4)), column, cmp_op, value), next_id


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("delta_rows", [1, 1_000_000])
def test_dml_corpus_matches_rebuild_oracle(seed: int, delta_rows: int) -> None:
    """Replay a random DML script through the delta-store write path —
    accelerators on, morsel pool with worker-crash injection — checking
    after every step against a database rebuilt from scratch off a plain
    Python mirror of the rows.  ``delta_rows=1`` merges on every write;
    the large threshold keeps everything pending in the delta."""
    rng = np.random.default_rng(4000 + seed)
    table, rows = random_table(rng, n=int(rng.integers(10, 40)))
    queries = [random_query(rng) for _ in range(6)]
    script = []
    next_id = len(rows)
    for _ in range(8):
        op, next_id = _random_dml(rng, next_id)
        script.append(op)

    try:
        deltamod.configure(delta_rows=delta_rows)
        scanopt.configure(dict_encode=True, zone_rows=8, plan_cache=True)
        parallel.configure(threads=4, morsel_rows=7, min_parallel_rows=1)
        resilience.configure(faults="worker_crash:0.1", fault_seed=seed)
        db = Database()
        db.create_table("t", table)
        for step, op in enumerate(script):
            _apply_dml(db, rows, op)
            if step % 2 and step != len(script) - 1:
                continue  # query every other step and at the end
            oracle_db = _rebuild_oracle(rows)
            for sql in queries:
                got = db.sql(sql)
                parallel.configure(threads=0)
                resilience.configure(faults="off")
                scanopt.configure(dict_encode=False, zone_rows=0, plan_cache=False)
                try:
                    expected = oracle_db.sql(sql)
                finally:
                    scanopt.configure(dict_encode=True, zone_rows=8, plan_cache=True)
                    parallel.configure(threads=4, morsel_rows=7, min_parallel_rows=1)
                    resilience.configure(faults="worker_crash:0.1", fault_seed=seed)
                try:
                    tables_bit_identical(got, expected)
                except AssertionError as exc:
                    raise AssertionError(
                        f"write path diverged after step {step} ({op[0]}) on: {sql}"
                    ) from exc
    finally:
        parallel.configure(threads=0, morsel_rows=parallel.DEFAULT_MORSEL_ROWS)
        resilience.configure(faults="off")


def _rebuild_oracle(rows: list[dict]) -> Database:
    """A fresh database holding exactly ``rows`` — never touched by DML."""
    oracle = Database()
    oracle.create_table(
        "t",
        Table.from_dict(
            {
                "id": [r["id"] for r in rows],
                "a": [r["a"] for r in rows],
                "b": [r["b"] for r in rows],
                "s": [r["s"] for r in rows],
            }
        ),
    )
    return oracle
