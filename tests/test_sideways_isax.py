"""Tests for sideways cracking and the iSAX data-series index."""

import numpy as np
import pytest

from repro.indexing import ISAXIndex, SidewaysCracker, paa_transform, sax_symbols
from repro.indexing.sax import sax_lower_bound_distance
from repro.indexing.sideways import CrackerMap
from repro.workloads import random_walk_series


class TestSidewaysCracking:
    @pytest.fixture()
    def data(self):
        rng = np.random.default_rng(0)
        head = rng.integers(0, 1000, size=2000)
        tails = {
            "b": rng.normal(size=2000),
            "c": rng.integers(0, 50, size=2000),
        }
        return head, tails

    def test_select_project_correct(self, data):
        head, tails = data
        cracker = SidewaysCracker(head, tails)
        got = cracker.select_project(100, 300, ["b"])["b"]
        expected = tails["b"][(head >= 100) & (head <= 300)]
        assert sorted(got.tolist()) == sorted(expected.tolist())

    def test_maps_created_lazily(self, data):
        head, tails = data
        cracker = SidewaysCracker(head, tails)
        assert cracker.maps_created == 0
        cracker.select_project(0, 100, ["b"])
        assert cracker.maps_created == 1
        cracker.select_project(0, 100, ["b", "c"])
        assert cracker.maps_created == 2

    def test_repeated_queries_converge(self, data):
        head, tails = data
        cracker = SidewaysCracker(head, tails)
        rng = np.random.default_rng(1)
        costs = []
        for _ in range(40):
            low = int(rng.integers(0, 900))
            before = cracker.work_touched
            cracker.select_project(low, low + 50, ["b"])
            costs.append(cracker.work_touched - before)
        assert np.mean(costs[-10:]) < np.mean(costs[:5]) / 2

    def test_unknown_tail_raises(self, data):
        head, tails = data
        cracker = SidewaysCracker(head, tails)
        with pytest.raises(KeyError):
            cracker.select_project(0, 10, ["zzz"])

    def test_map_consistency_invariant(self, data):
        head, tails = data
        cracker_map = CrackerMap(head, tails["b"])
        rng = np.random.default_rng(2)
        for _ in range(30):
            low = int(rng.integers(0, 950))
            cracker_map.lookup(low, low + 40)
            assert cracker_map.is_consistent()


class TestSAX:
    def test_paa_shape_and_means(self):
        series = np.asarray([1.0, 1.0, 3.0, 3.0])
        assert paa_transform(series, 2).tolist() == [1.0, 3.0]

    def test_paa_uneven_lengths(self):
        series = np.arange(10, dtype=float)
        paa = paa_transform(series, 3)
        assert len(paa) == 3
        assert paa[0] < paa[1] < paa[2]

    def test_sax_symbols_ordered(self):
        paa = np.asarray([-2.0, 0.0, 2.0])
        symbols = sax_symbols(paa, 4)
        assert symbols[0] < symbols[1] <= symbols[2]

    def test_lower_bound_property(self):
        """MINDIST must never exceed the true Euclidean distance."""
        rng = np.random.default_rng(3)
        series = random_walk_series(50, 128, seed=4)
        word_length, cardinality = 8, 16
        paa = paa_transform(series, word_length)
        words = sax_symbols(paa, cardinality)
        for _ in range(20):
            query = series[int(rng.integers(0, 50))] + rng.normal(0, 0.1, size=128)
            query_paa = paa_transform(query, word_length)
            for i in range(50):
                true_distance = float(np.linalg.norm(series[i] - query))
                bound = sax_lower_bound_distance(
                    query_paa, words[i], cardinality, 128
                )
                assert bound <= true_distance + 1e-9


class TestISAX:
    @pytest.fixture()
    def series(self):
        return random_walk_series(400, 128, seed=5)

    def test_all_series_indexed(self, series):
        index = ISAXIndex(series, word_length=8, leaf_capacity=32)
        total = sum(len(leaf.series_ids) for leaf in index.leaves())
        assert total == len(series)

    def test_leaves_respect_capacity_mostly(self, series):
        index = ISAXIndex(series, word_length=8, leaf_capacity=32)
        oversized = [l for l in index.leaves() if len(l.series_ids) > 32]
        # only leaves that cannot be split further may exceed capacity
        assert len(oversized) <= 2

    def test_approximate_search_returns_valid_ids(self, series):
        index = ISAXIndex(series, leaf_capacity=16)
        results = index.approximate_search(series[7], k=3)
        assert len(results) >= 1
        for series_id, distance in results:
            assert 0 <= series_id < len(series)
            assert distance >= 0

    def test_exact_search_finds_true_nearest(self, series):
        index = ISAXIndex(series, leaf_capacity=16)
        rng = np.random.default_rng(6)
        for _ in range(10):
            target = int(rng.integers(0, len(series)))
            query = series[target] + rng.normal(0, 0.01, size=series.shape[1])
            distances = np.linalg.norm(series - query, axis=1)
            truth = int(np.argmin(distances))
            (found, _), = index.exact_search(query, k=1)
            assert found == truth

    def test_exact_search_prunes(self, series):
        index = ISAXIndex(series, leaf_capacity=16)
        index.reset_counters()
        index.exact_search(series[0] + 0.01, k=1)
        assert index.distance_computations < len(series)

    def test_exact_knn_matches_brute_force(self, series):
        index = ISAXIndex(series, leaf_capacity=16)
        query = random_walk_series(1, 128, seed=9)[0]
        distances = np.linalg.norm(series - query, axis=1)
        truth = set(np.argsort(distances)[:5].tolist())
        found = {sid for sid, _ in index.exact_search(query, k=5)}
        assert found == truth

    def test_exact_knn_results_are_distinct(self, series):
        index = ISAXIndex(series, leaf_capacity=16)
        query = series[5] + 0.01
        found = [sid for sid, _ in index.exact_search(query, k=5)]
        assert len(found) == len(set(found)) == 5

    def test_adaptive_mode_defers_splits(self, series):
        eager = ISAXIndex(series, leaf_capacity=16, adaptive=False)
        lazy = ISAXIndex(series, leaf_capacity=16, adaptive=True)
        assert lazy.num_leaves < eager.num_leaves  # work deferred
        lazy.approximate_search(series[0], k=1)  # a query triggers splitting
        results = lazy.exact_search(series[3], k=1)
        assert results[0][0] == 3
