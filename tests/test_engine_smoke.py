"""End-to-end smoke tests of the engine substrate."""

import numpy as np
import pytest

from repro.engine import Database, Table


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.create_table(
        "orders",
        {
            "id": [1, 2, 3, 4, 5, 6],
            "customer": ["ann", "bob", "ann", "cat", "bob", "ann"],
            "amount": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
            "region_id": [1, 2, 1, 3, 2, 9],
        },
    )
    database.create_table(
        "regions",
        {"region_id": [1, 2, 3], "region": ["north", "south", "east"]},
    )
    return database


def test_select_star(db: Database) -> None:
    result = db.sql("SELECT * FROM orders")
    assert result.num_rows == 6
    assert result.column_names == ("id", "customer", "amount", "region_id")


def test_where_and_order(db: Database) -> None:
    result = db.sql(
        "SELECT id, amount FROM orders WHERE amount > 15 AND amount <= 50 "
        "ORDER BY amount DESC"
    )
    assert result.column("id").to_list() == [5, 4, 3, 2]


def test_projection_expression(db: Database) -> None:
    result = db.sql("SELECT id, amount * 2 AS double_amount FROM orders LIMIT 2")
    assert result.column("double_amount").to_list() == [20.0, 40.0]


def test_group_by_aggregates(db: Database) -> None:
    result = db.sql(
        "SELECT customer, COUNT(*) AS n, SUM(amount) AS total FROM orders "
        "GROUP BY customer ORDER BY total DESC"
    )
    rows = result.to_dicts()
    assert rows[0] == {"customer": "ann", "n": 3, "total": 100.0}
    assert rows[1] == {"customer": "bob", "n": 2, "total": 70.0}


def test_global_aggregate(db: Database) -> None:
    result = db.sql("SELECT COUNT(*) AS n, AVG(amount) AS mean FROM orders")
    assert result.to_dicts() == [{"n": 6, "mean": 35.0}]


def test_having(db: Database) -> None:
    result = db.sql(
        "SELECT customer, SUM(amount) AS total FROM orders "
        "GROUP BY customer HAVING SUM(amount) > 60 ORDER BY customer"
    )
    assert result.column("customer").to_list() == ["ann", "bob"]
    assert result.column_names == ("customer", "total")


def test_join(db: Database) -> None:
    result = db.sql(
        "SELECT customer, region FROM orders "
        "JOIN regions ON orders.region_id = regions.region_id "
        "ORDER BY id"
    )
    assert result.num_rows == 5  # region 9 has no match
    assert result.column("region").to_list() == [
        "north", "south", "north", "east", "south",
    ]


def test_left_join_pads_nulls(db: Database) -> None:
    result = db.sql(
        "SELECT id, region FROM orders "
        "LEFT JOIN regions ON orders.region_id = regions.region_id "
        "ORDER BY id"
    )
    assert result.num_rows == 6
    assert result.column("region").to_list()[-1] is None


def test_in_and_between(db: Database) -> None:
    result = db.sql(
        "SELECT id FROM orders WHERE customer IN ('ann', 'cat') "
        "AND amount BETWEEN 30 AND 60 ORDER BY id"
    )
    assert result.column("id").to_list() == [3, 4, 6]


def test_null_semantics() -> None:
    db = Database()
    db.create_table("t", Table.from_dict({"a": [1, None, 3], "b": [None, 2.0, 3.0]}))
    kept = db.sql("SELECT a FROM t WHERE a > 0")
    assert kept.column("a").to_list() == [1, 3]
    nulls = db.sql("SELECT a FROM t WHERE b IS NULL")
    assert nulls.column("a").to_list() == [1]
    agg = db.sql("SELECT COUNT(a) AS n, AVG(a) AS mean FROM t")
    assert agg.to_dicts() == [{"n": 2, "mean": 2.0}]


def test_order_by_alias(db: Database) -> None:
    result = db.sql("SELECT id, amount / 10 AS tenth FROM orders ORDER BY tenth DESC LIMIT 1")
    assert result.column("id").to_list() == [6]


def test_explain_mentions_scan(db: Database) -> None:
    text = db.explain("SELECT id FROM orders WHERE amount > 10")
    assert "Scan(orders" in text
    assert "Project" in text


def test_count_distinct(db: Database) -> None:
    result = db.sql("SELECT COUNT(DISTINCT customer) AS c FROM orders")
    assert result.to_dicts() == [{"c": 3}]


def test_division_by_zero_is_null() -> None:
    db = Database()
    db.create_table("t", {"a": [10, 20], "b": [2, 0]})
    result = db.sql("SELECT a / b AS q FROM t")
    assert result.column("q").to_list() == [5.0, None]
