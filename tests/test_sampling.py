"""Tests for the approximate-query-processing layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import col
from repro.errors import ApproximationError
from repro.sampling import (
    ApproximateQueryEngine,
    OnlineAggregator,
    ReservoirSampler,
    SampleCatalog,
    WeightedSampler,
    bootstrap_ci,
    build_stratified_sample,
    reservoir_sample,
    srs_estimate,
)
from repro.sampling.bootstrap import bootstrap_diagnostic
from repro.workloads import sales_table


class TestEstimators:
    def test_avg_estimate_near_truth(self):
        rng = np.random.default_rng(0)
        population = rng.normal(50, 10, size=100_000)
        sample = rng.choice(population, size=2000, replace=False)
        estimate = srs_estimate(sample, len(population), "avg")
        assert estimate.contains(float(population.mean()))

    def test_sum_scales_by_population(self):
        sample = np.asarray([1.0, 2.0, 3.0])
        estimate = srs_estimate(sample, 300, "sum")
        assert estimate.value == pytest.approx(600.0)

    def test_count_from_indicators(self):
        rng = np.random.default_rng(1)
        indicators = (rng.random(5000) < 0.3).astype(float)
        estimate = srs_estimate(indicators, 100_000, "count")
        assert 25_000 < estimate.value < 35_000

    def test_full_sample_has_zero_width(self):
        values = np.arange(100, dtype=float)
        estimate = srs_estimate(values, 100, "avg")
        assert estimate.half_width == 0.0

    def test_interval_narrows_with_sample_size(self):
        rng = np.random.default_rng(2)
        population = rng.normal(size=100_000)
        small = srs_estimate(population[:100], 100_000, "avg")
        large = srs_estimate(population[:10_000], 100_000, "avg")
        assert large.half_width < small.half_width

    def test_empty_sample_raises(self):
        with pytest.raises(ApproximationError):
            srs_estimate(np.empty(0), 10, "avg")

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_property_interval_is_symmetric_and_finite(self, values):
        estimate = srs_estimate(np.asarray(values), 10_000, "avg")
        assert np.isfinite(estimate.value)
        assert estimate.half_width >= 0
        assert estimate.low <= estimate.value <= estimate.high

    def test_coverage_is_approximately_nominal(self):
        """95% intervals should cover the truth ~95% of the time."""
        rng = np.random.default_rng(3)
        population = rng.exponential(scale=10.0, size=50_000)
        truth = float(population.mean())
        hits = 0
        trials = 200
        for _ in range(trials):
            sample = rng.choice(population, size=500, replace=False)
            if srs_estimate(sample, len(population), "avg").contains(truth):
                hits += 1
        assert hits / trials > 0.88


class TestOnlineAggregation:
    def test_interval_shrinks(self):
        rng = np.random.default_rng(4)
        values = rng.normal(100, 20, size=50_000)
        agg = OnlineAggregator(values, "avg", batch_size=500)
        first = agg.step().estimate
        for _ in range(20):
            last = agg.step().estimate
        assert last.half_width < first.half_width

    def test_exhaustion_gives_exact_answer(self):
        values = np.arange(1000, dtype=float)
        agg = OnlineAggregator(values, "avg", batch_size=100)
        result = None
        for result in agg.run():
            pass
        assert result.estimate.value == pytest.approx(values.mean())
        assert result.estimate.half_width == 0.0

    def test_run_until_relative_error(self):
        rng = np.random.default_rng(5)
        values = rng.normal(100, 5, size=100_000)
        agg = OnlineAggregator(values, "avg", batch_size=200)
        result = agg.run_until(relative_error=0.01)
        assert result.estimate.relative_error <= 0.01
        assert result.rows_processed < len(values)

    def test_grouped_estimates(self):
        rng = np.random.default_rng(6)
        groups = rng.choice(["x", "y"], size=20_000)
        values = np.where(groups == "x", 10.0, 20.0) + rng.normal(size=20_000)
        agg = OnlineAggregator(values, "avg", groups=groups, batch_size=1000)
        result = agg.step()
        assert abs(result.group_estimates["x"].value - 10.0) < 1.0
        assert abs(result.group_estimates["y"].value - 20.0) < 1.0

    def test_run_until_requires_a_condition(self):
        agg = OnlineAggregator(np.arange(10.0), "avg")
        with pytest.raises(ApproximationError):
            agg.run_until()

    def test_count_aggregate(self):
        rng = np.random.default_rng(7)
        indicators = (rng.random(10_000) < 0.25).astype(float)
        agg = OnlineAggregator(indicators, "count", batch_size=1000)
        result = agg.run_until(max_rows=4000)
        assert 2000 < result.estimate.value < 3000


class TestReservoir:
    def test_reservoir_size(self):
        sample = reservoir_sample(range(10_000), k=50, seed=0)
        assert len(sample) == 50
        assert all(0 <= x < 10_000 for x in sample)

    def test_small_stream_kept_entirely(self):
        assert sorted(reservoir_sample(range(5), k=50)) == [0, 1, 2, 3, 4]

    def test_uniformity(self):
        counts = np.zeros(10)
        for seed in range(300):
            for item in reservoir_sample(range(10), k=3, seed=seed):
                counts[item] += 1
        # each item should appear ~90 times (300 * 3/10)
        assert counts.min() > 50 and counts.max() < 140

    def test_algorithm_l_matches_r_statistically(self):
        fast = ReservoirSampler(20, seed=1, fast=True)
        fast.extend(range(5000))
        assert len(fast.sample()) == 20
        assert fast.seen == 5000
        # means should be near the stream mean for both algorithms
        assert abs(np.mean(fast.sample()) - 2500) < 900


class TestStratified:
    @pytest.fixture()
    def table(self):
        return sales_table(20_000, seed=0)

    def test_caps_respected(self, table):
        sample = build_stratified_sample(table, ["region"], cap=100)
        assert all(s.taken <= 100 for s in sample.strata.values())

    def test_rare_groups_fully_kept(self, table):
        sample = build_stratified_sample(table, ["region"], cap=100)
        sizes = {key: s.population for key, s in sample.strata.items()}
        rare = min(sizes, key=sizes.get)
        if sizes[rare] <= 100:
            assert sample.strata[rare].taken == sizes[rare]

    def test_grouped_estimates_near_truth(self, table):
        sample = build_stratified_sample(table, ["region"], cap=500, seed=1)
        estimates = sample.estimate_grouped(table, "revenue", "avg")
        # compute the truth per region
        regions = table.column("region").to_list()
        revenue = np.asarray(table.column("revenue").data, dtype=float)
        for (region,), estimate in estimates.items():
            mask = np.asarray([r == region for r in regions])
            truth = float(revenue[mask].mean())
            assert abs(estimate.value - truth) / truth < 0.25

    def test_count_is_exact_per_group(self, table):
        sample = build_stratified_sample(table, ["region"], cap=50)
        estimates = sample.estimate_grouped(table, None, "count")
        regions = table.column("region").to_list()
        for (region,), estimate in estimates.items():
            assert estimate.value == regions.count(region)
            assert estimate.half_width == 0.0

    def test_cannot_answer_uncovered_grouping(self, table):
        sample = build_stratified_sample(table, ["region"], cap=50)
        with pytest.raises(ApproximationError):
            sample.estimate_grouped(table, "revenue", "avg", ["category"])


class TestApproximateQueryEngine:
    @pytest.fixture()
    def engine(self):
        table = sales_table(30_000, seed=2)
        catalog = SampleCatalog(table)
        catalog.add_uniform(0.01, seed=3)
        catalog.add_uniform(0.1, seed=4)
        catalog.add_stratified(["region"], cap=400, seed=5)
        return ApproximateQueryEngine(table, catalog)

    def test_global_avg(self, engine):
        answer = engine.query("avg", "revenue")
        revenue = np.asarray(engine.table.column("revenue").data, dtype=float)
        assert abs(answer.estimate.value - revenue.mean()) / revenue.mean() < 0.1

    def test_time_bound_picks_small_sample(self, engine):
        answer = engine.query("avg", "revenue", time_bound_rows=500)
        assert answer.rows_scanned <= 500

    def test_error_bound_picks_larger_sample(self, engine):
        loose = engine.query("avg", "revenue", error_bound=0.5)
        tight = engine.query("avg", "revenue", error_bound=0.01)
        assert tight.rows_scanned >= loose.rows_scanned

    def test_impossible_time_bound_raises(self, engine):
        with pytest.raises(ApproximationError):
            engine.query("avg", "revenue", time_bound_rows=1)

    def test_grouped_query_uses_stratified(self, engine):
        answer = engine.query("avg", "revenue", group_by=["region"])
        assert "stratified" in answer.sample_used
        assert len(answer.group_estimates) >= 4

    def test_count_with_predicate(self, engine):
        answer = engine.query("count", where=col("quantity") >= 5)
        quantity = np.asarray(engine.table.column("quantity").data)
        truth = int((quantity >= 5).sum())
        assert abs(answer.estimate.value - truth) / truth < 0.2


class TestBootstrap:
    def test_ci_covers_median(self):
        rng = np.random.default_rng(8)
        sample = rng.normal(10, 2, size=500)
        estimate = bootstrap_ci(sample, np.median, seed=9)
        assert estimate.low < 10 < estimate.high

    def test_diagnostic_flags_unstable_statistic(self):
        rng = np.random.default_rng(10)
        # max() of a heavy-tailed sample is notoriously unstable
        sample = rng.pareto(1.1, size=1000)
        result = bootstrap_diagnostic(sample, np.max, tolerance=0.2, seed=11)
        assert not result.reliable

    def test_diagnostic_accepts_stable_statistic(self):
        rng = np.random.default_rng(12)
        sample = rng.normal(10.0, 1.0, size=2000)
        result = bootstrap_diagnostic(sample, np.mean, tolerance=0.5, seed=13)
        assert result.reliable


class TestWeightedSampling:
    def test_bias_focuses_on_heavy_rows(self):
        weights = np.concatenate([np.full(9000, 0.1), np.full(1000, 10.0)])
        focused = WeightedSampler(weights, bias=1.0, seed=0).build(500)
        uniform = WeightedSampler(weights, bias=0.0, seed=0).build(500)
        interesting = np.arange(10_000) >= 9000
        focused_hits = int(interesting[focused.row_indices].sum())
        uniform_hits = int(interesting[uniform.row_indices].sum())
        assert focused_hits > 3 * max(1, uniform_hits)

    def test_budget_respected(self):
        sampler = WeightedSampler(np.ones(1000), seed=1)
        assert sampler.build(100).size == 100
        assert sampler.build(5000).size == 1000  # capped at table size

    def test_horvitz_thompson_roughly_unbiased(self):
        rng = np.random.default_rng(14)
        values = rng.uniform(0, 100, size=5000)
        weights = values + 1.0  # bias toward large values
        sampler = WeightedSampler(weights, bias=1.0, seed=15)
        estimates = []
        for seed in range(30):
            sampler = WeightedSampler(weights, bias=1.0, seed=seed)
            impression = sampler.build(500)
            estimates.append(
                impression.horvitz_thompson_sum(values[impression.row_indices])
            )
        truth = values.sum()
        assert abs(np.mean(estimates) - truth) / truth < 0.15

    def test_invalid_weights_raise(self):
        with pytest.raises(ApproximationError):
            WeightedSampler(np.asarray([-1.0, 2.0]))
        with pytest.raises(ApproximationError):
            WeightedSampler(np.empty(0))
