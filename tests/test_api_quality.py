"""API-quality enforcement: every public item documented, exports sane.

These tests turn the documentation deliverable into an invariant: adding
an undocumented public class/function anywhere in the library fails CI.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.engine",
    "repro.explore",
    "repro.indexing",
    "repro.interface",
    "repro.loading",
    "repro.prefetch",
    "repro.sampling",
    "repro.storage",
    "repro.synopses",
    "repro.viz",
    "repro.workloads",
]


def _walk_modules():
    seen = set()
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if not hasattr(package, "__path__"):
            continue
        for info in pkgutil.iter_modules(package.__path__):
            full = f"{package_name}.{info.name}"
            if full not in seen:
                seen.add(full)
                yield importlib.import_module(full)


ALL_MODULES = list({module.__name__: module for module in _walk_modules()}.values())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module) -> None:
    assert module.__doc__ and module.__doc__.strip(), f"{module.__name__} lacks a docstring"


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module) -> None:
    undocumented = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (item.__doc__ and item.__doc__.strip()):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(item):
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                # getdoc follows the MRO: overrides of documented base
                # methods (e.g. Expression.evaluate) inherit their docs
                if not inspect.getdoc(getattr(item, method_name)):
                    undocumented.append(f"{module.__name__}.{name}.{method_name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_all_exports_resolve() -> None:
    for module in ALL_MODULES:
        exported = getattr(module, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            assert hasattr(module, name), f"{module.__name__}.__all__ lists missing {name}"


def test_version_string() -> None:
    assert repro.__version__.count(".") == 2
