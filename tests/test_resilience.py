"""Tests for the query governor (repro.resilience).

Covers the four pillars of the resilience layer:

- deadlines and cancellation (operator- and morsel-boundary checkpoints,
  bounded cancellation latency, Ctrl-C surfacing as a typed error);
- memory budgets (estimated-allocation accounting, the ``alloc_spike``
  fault point);
- graceful degradation (approximate answers whose confidence interval
  contains the exact result);
- fault tolerance (serial morsel retry under injected worker crashes —
  including bit-identity of the SQL differential corpus — and the
  process-pool -> thread-pool fallback).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import resilience
from repro.engine import Database, DataType
from repro.engine import parallel
from repro.engine import shards
from repro.engine.csv_io import read_csv
from repro.errors import (
    ApproximationError,
    CatalogError,
    ExecutionError,
    LoadingError,
    MemoryBudgetError,
    QueryCancelledError,
    QueryTimeoutError,
)
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.tracing import get_tracer
from repro.resilience import (
    CancellationToken,
    QueryContext,
    activate,
    context_from_config,
    current_context,
    parse_faults,
)
from repro.resilience.degrade import DegradedTable, degradable, degraded_answer
from repro.resilience.faults import FaultInjector, FaultSpec, InjectedFault
from tests.test_parallel import tables_bit_identical
from tests.test_sql_differential import random_query, random_table


@pytest.fixture(autouse=True)
def _reset_governor():
    """Every test restores the governor/pool state it found (which may be
    env-driven, e.g. the CI chaos leg's ``REPRO_FAULTS``)."""
    config = resilience.get_config()
    saved = {slot: getattr(config, slot) for slot in type(config).__slots__}
    pconfig = parallel.get_config()
    psaved = {slot: getattr(pconfig, slot) for slot in type(pconfig).__slots__}
    yield
    for slot, value in saved.items():
        setattr(config, slot, value)
    for slot, value in psaved.items():
        setattr(pconfig, slot, value)
    parallel.shutdown_pool()


@pytest.fixture()
def registry():
    """A fresh metrics registry installed for the test."""
    fresh = MetricsRegistry()
    old = set_registry(fresh)
    yield fresh
    set_registry(old)


def _demo_db(n: int = 2_000, seed: int = 0) -> Database:
    rng = np.random.default_rng(seed)
    db = Database()
    db.create_table(
        "t",
        {
            "x": rng.integers(0, 1_000, n).tolist(),
            "y": np.round(rng.uniform(0, 100, n), 3).tolist(),
            "g": [["a", "b", "c"][i] for i in rng.integers(0, 3, n)],
        },
    )
    return db


AGG_QUERY = "SELECT g, COUNT(*) AS n, SUM(x) AS sx, AVG(y) AS ay FROM t GROUP BY g"


# -- context unit behaviour -----------------------------------------------------------


class TestQueryContext:
    def test_no_limits_never_raises(self):
        ctx = QueryContext()
        ctx.check()
        ctx.charge(10**12)

    def test_deadline_raises_timeout(self):
        ctx = QueryContext(timeout_ms=1)
        time.sleep(0.005)
        with pytest.raises(QueryTimeoutError):
            ctx.check()

    def test_cancellation_raises(self):
        ctx = QueryContext()
        ctx.cancel()
        with pytest.raises(QueryCancelledError):
            ctx.check()
        assert ctx.cancelled

    def test_token_is_shared(self):
        token = CancellationToken()
        ctx = QueryContext(token=token)
        token.cancel()
        with pytest.raises(QueryCancelledError):
            ctx.check()

    def test_memory_budget(self):
        ctx = QueryContext(memory_budget_bytes=1_000)
        ctx.charge(600)
        ctx.release(600)
        ctx.charge(900, "Scan(t)")
        with pytest.raises(MemoryBudgetError, match="Scan"):
            ctx.charge(200, "Scan(t)")
        assert ctx.peak_bytes >= 1_100

    def test_activation_is_scoped(self):
        assert current_context() is None
        ctx = QueryContext()
        with activate(ctx):
            assert current_context() is ctx
        assert current_context() is None

    def test_context_from_config_maps_zero_to_none(self):
        resilience.configure(timeout_ms=0, memory_budget_kb=0)
        ctx = context_from_config()
        assert ctx.deadline_s is None
        assert ctx.memory_budget_bytes is None

    def test_configure_rejects_bad_values(self):
        with pytest.raises(ValueError):
            resilience.configure(timeout_ms=-1)
        with pytest.raises(ValueError):
            resilience.configure(memory_budget_kb=-1)
        with pytest.raises(ValueError):
            resilience.configure(max_retries=-1)
        with pytest.raises(ValueError):
            resilience.configure(faults="nonsense")


# -- fault-injection harness ----------------------------------------------------------


class TestFaults:
    def test_parse_spec(self):
        specs = parse_faults("worker_crash:0.5,slow_morsel:1:35")
        assert specs["worker_crash"] == FaultSpec("worker_crash", 0.5)
        assert specs["slow_morsel"] == FaultSpec("slow_morsel", 1.0, 35.0)
        assert parse_faults("") == {}

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_faults("worker_crash")
        with pytest.raises(ValueError):
            parse_faults("meteor_strike:0.5")
        with pytest.raises(ValueError):
            parse_faults("worker_crash:1.5")

    def test_decisions_are_deterministic(self):
        injector = FaultInjector(parse_faults("worker_crash:0.3"), seed=7)
        decisions = [injector.decide("worker_crash", (0, i)) for i in range(100)]
        again = [injector.decide("worker_crash", (0, i)) for i in range(100)]
        assert decisions == again
        fired = sum(d is not None for d in decisions)
        assert 0 < fired < 100  # probabilistic, not all-or-nothing

    def test_crash_helper_raises(self):
        injector = FaultInjector(parse_faults("worker_crash:1.0"), seed=0)
        with pytest.raises(InjectedFault):
            injector.maybe_crash((0, 0))

    def test_pragma_roundtrip(self):
        db = Database()
        db.execute("PRAGMA faults=worker_crash:0.25")
        shown = db.execute("PRAGMA faults")
        assert shown.column("value")[0] == "worker_crash:0.25"
        db.execute("PRAGMA faults=off")
        assert db.execute("PRAGMA faults").column("value")[0] == "off"

    def test_pragma_rejects_bad_spec(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.execute("PRAGMA faults=meteor_strike:1")


# -- deadlines & cancellation through the engine --------------------------------------


class TestDeadlines:
    def test_timeout_cancels_within_a_morsel_of_the_deadline(self):
        """The acceptance criterion: with slow-morsel injection the query
        dies within roughly one morsel's work of its deadline, far before
        it could have finished."""
        db = _demo_db(n=4_000)
        parallel.configure(threads=2, morsel_rows=100, min_parallel_rows=1)
        # 40 morsels x 50 ms sleep / 2 workers ~= 1 s of work if run dry
        resilience.configure(faults="slow_morsel:1.0:50", timeout_ms=60)
        start = time.perf_counter()
        with pytest.raises(QueryTimeoutError):
            db.sql(AGG_QUERY)
        wall_s = time.perf_counter() - start
        # deadline (60 ms) + in-flight morsels (~2 x 50 ms) + slack
        assert wall_s < 0.45, f"cancellation latency out of bounds: {wall_s:.3f}s"

    def test_timeout_pragma_roundtrip(self):
        db = Database()
        db.execute("PRAGMA timeout_ms=250")
        assert resilience.get_config().timeout_ms == 250
        assert db.execute("PRAGMA timeout_ms").column("value")[0] == 250
        db.execute("PRAGMA timeout_ms=0")

    def test_timeout_metric_increments(self, registry):
        db = _demo_db(n=4_000)
        parallel.configure(threads=2, morsel_rows=100, min_parallel_rows=1)
        resilience.configure(faults="slow_morsel:1.0:50", timeout_ms=40)
        with pytest.raises(QueryTimeoutError):
            db.sql(AGG_QUERY)
        assert registry.counter("resilience.timeouts").value == 1

    def test_keyboard_interrupt_surfaces_as_cancellation(
        self, registry, monkeypatch
    ):
        db = _demo_db(n=100)

        def boom(plan, database, profiler=None):
            raise KeyboardInterrupt

        import repro.engine.executor as executor

        monkeypatch.setattr(executor, "execute_plan", boom)
        with pytest.raises(QueryCancelledError):
            db.sql("SELECT COUNT(*) AS n FROM t")
        assert registry.counter("resilience.cancellations").value == 1
        # the session is still usable afterwards
        monkeypatch.undo()
        assert db.sql("SELECT COUNT(*) AS n FROM t").column("n")[0] == 100
        assert get_tracer().open_depth() == 0

    def test_cancelled_token_aborts_governed_query(self, monkeypatch):
        db = _demo_db(n=100)
        import repro.engine.executor as executor

        real = executor.execute_plan

        def cancel_then_run(plan, database, profiler=None):
            ctx = current_context()
            assert ctx is not None
            ctx.cancel()
            return real(plan, database, profiler)

        monkeypatch.setattr(executor, "execute_plan", cancel_then_run)
        with pytest.raises(QueryCancelledError):
            db.sql("SELECT COUNT(*) AS n FROM t")


# -- memory budgets -------------------------------------------------------------------


class TestMemoryBudget:
    def test_budget_exceeded_raises(self, registry):
        db = _demo_db(n=5_000)
        resilience.configure(memory_budget_kb=1)
        with pytest.raises(MemoryBudgetError):
            db.sql("SELECT x, y FROM t WHERE x > 10")
        assert registry.counter("resilience.memory_exceeded").value == 1

    def test_generous_budget_passes(self):
        db = _demo_db(n=1_000)
        resilience.configure(memory_budget_kb=100_000)
        assert db.sql("SELECT COUNT(*) AS n FROM t").column("n")[0] == 1_000

    def test_alloc_spike_inflates_charges(self):
        db = _demo_db(n=1_000)
        # tens of KB of intermediates fit a 10 MB budget...
        resilience.configure(memory_budget_kb=10_000)
        db.sql("SELECT x FROM t WHERE x >= 0")
        # ...but not when every charge is inflated 10000x
        resilience.configure(faults="alloc_spike:1.0:10000")
        with pytest.raises(MemoryBudgetError):
            db.sql("SELECT x FROM t WHERE x >= 0")


# -- graceful degradation -------------------------------------------------------------


class TestDegradation:
    def _exact_and_degraded(self, n: int = 20_000):
        # the degraded answer samples fixed row positions (seed 0), so
        # the CI-containment guarantee is calibrated against the insert
        # order; keep env-driven auto-sharding from re-clustering the
        # demo table under that sample
        saved_shards = shards.get_config().shards
        shards.configure(shards=0)
        try:
            db = _demo_db(n=n)
        finally:
            shards.configure(shards=saved_shards)
        exact = db.sql(AGG_QUERY)
        resilience.configure(memory_budget_kb=4, degrade=1, degrade_rows=2_000)
        degraded = db.sql(AGG_QUERY)
        return exact, degraded

    def test_degraded_answer_is_tagged(self):
        exact, degraded = self._exact_and_degraded()
        assert isinstance(degraded, DegradedTable)
        assert degraded.degraded
        assert degraded.sample_rows == 2_000
        assert degraded.total_rows == 20_000
        assert "budget" in degraded.reason
        assert list(degraded.column_names) == [
            "g", "n", "n_lo", "n_hi", "sx", "sx_lo", "sx_hi", "ay", "ay_lo", "ay_hi",
        ]

    def test_confidence_interval_contains_exact_answer(self):
        """The acceptance criterion: every exact cell lies inside the
        degraded answer's confidence interval (deterministic seed)."""
        exact, degraded = self._exact_and_degraded()
        exact_by_group = {
            exact.column("g")[i]: {
                name: exact.column(name)[i] for name in ("n", "sx", "ay")
            }
            for i in range(exact.num_rows)
        }
        assert degraded.num_rows == exact.num_rows
        for i in range(degraded.num_rows):
            truth = exact_by_group[degraded.column("g")[i]]
            for name in ("n", "sx", "ay"):
                lo = degraded.column(f"{name}_lo")[i]
                hi = degraded.column(f"{name}_hi")[i]
                assert lo <= truth[name] <= hi, (
                    f"exact {name}={truth[name]} outside [{lo}, {hi}]"
                )

    def test_degradation_metric_and_span(self, registry):
        tracer = get_tracer()
        tracer.clear()
        tracer.enable()
        try:
            self._exact_and_degraded(n=5_000)
        finally:
            tracer.disable()
        assert registry.counter("resilience.degradations").value == 1
        names = [span.name for span in tracer.all_spans()]
        assert "resilience.degrade" in names

    def test_non_degradable_plan_still_fails(self):
        db = _demo_db(n=5_000)
        resilience.configure(memory_budget_kb=1, degrade=1)
        with pytest.raises(MemoryBudgetError):
            db.sql("SELECT x, y FROM t ORDER BY y")

    def test_degradable_shapes(self):
        db = _demo_db(n=100)
        assert degradable(db.plan("SELECT COUNT(*) AS n FROM t"))
        assert degradable(db.plan(AGG_QUERY))
        assert degradable(db.plan("SELECT AVG(y) AS a FROM t WHERE x > 500"))
        assert not degradable(db.plan("SELECT x FROM t"))
        assert not degradable(db.plan("SELECT g, COUNT(*) AS n FROM t GROUP BY g ORDER BY n"))
        assert not degradable(db.plan("SELECT COUNT(DISTINCT g) AS n FROM t"))
        assert not degradable(db.plan("SELECT MAX(x) AS m FROM t"))

    def test_degraded_answer_rejects_bad_plan(self):
        db = _demo_db(n=100)
        with pytest.raises(ApproximationError):
            degraded_answer(db.plan("SELECT x FROM t"), db)

    def test_degradation_does_not_mask_cancellation(self, monkeypatch):
        """A cancelled query must never silently return an approximation."""
        db = _demo_db(n=1_000)
        resilience.configure(degrade=1)
        import repro.engine.executor as executor

        def boom(plan, database, profiler=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(executor, "execute_plan", boom)
        with pytest.raises(QueryCancelledError):
            db.sql(AGG_QUERY)


# -- fault tolerance: retries and pool fallback ---------------------------------------


class TestRetries:
    def test_injected_crashes_are_retried_to_the_exact_result(self, registry):
        db = _demo_db(n=2_000)
        parallel.configure(threads=0)
        serial = db.sql(AGG_QUERY)
        parallel.configure(threads=4, morsel_rows=64, min_parallel_rows=1)
        resilience.configure(faults="worker_crash:1.0")  # every morsel crashes once
        recovered = db.sql(AGG_QUERY)
        tables_bit_identical(serial, recovered)
        assert registry.counter("resilience.morsel_failures").value > 0
        assert registry.counter("resilience.retries").value > 0

    def test_persistent_failure_exhausts_retries(self):
        parallel.configure(threads=2, morsel_rows=4, min_parallel_rows=1)

        def always_broken(start: int, stop: int) -> int:
            raise RuntimeError("kaput")

        with pytest.raises(ExecutionError, match="failed after"):
            parallel._run_tasks(always_broken, [(0, 4)])

    def test_resource_errors_are_not_retried(self):
        parallel.configure(threads=2, morsel_rows=4, min_parallel_rows=1)
        ctx = QueryContext()
        ctx.cancel()

        def kernel(start: int, stop: int) -> int:
            return stop - start

        with activate(ctx):
            with pytest.raises(QueryCancelledError):
                parallel._run_tasks(kernel, [(0, 4)])

    def test_differential_corpus_bit_identical_under_crashes(self):
        """The acceptance criterion: with worker_crash injection on, the
        SQL differential corpus still matches serial bit for bit."""
        resilience.configure(faults="worker_crash:0.2", fault_seed=3)
        rng = np.random.default_rng(11)
        checked = 0
        for _ in range(40):
            table, _rows = random_table(rng, 60)
            query = random_query(rng)
            db = Database()
            db.create_table("t", table)
            parallel.configure(threads=0)
            serial = db.sql(query)
            parallel.configure(threads=4, morsel_rows=7, min_parallel_rows=1)
            recovered = db.sql(query)
            parallel.configure(threads=0)
            tables_bit_identical(serial, recovered)
            checked += 1
        assert checked == 40


class TestPoolFallback:
    def test_broken_process_pool_falls_back_to_threads(
        self, registry, monkeypatch
    ):
        from concurrent.futures.process import BrokenProcessPool

        parallel.configure(threads=2, morsel_rows=4, min_parallel_rows=1)
        parallel.configure(pool_kind="process")

        class _BrokenPool:
            def submit(self, fn, *args):
                raise BrokenProcessPool("worker died")

        real_get_pool = parallel._get_pool

        def fake_get_pool():
            if parallel.get_config().pool_kind == "process":
                return _BrokenPool()
            return real_get_pool()

        monkeypatch.setattr(parallel, "_get_pool", fake_get_pool)

        def kernel(start: int, stop: int) -> int:
            return stop - start

        results = parallel._run_tasks(kernel, [(0, 4), (4, 8)])
        assert results == [4, 4]
        assert parallel.get_config().pool_kind == "thread"
        assert registry.counter("resilience.pool_fallbacks").value == 1

    def test_thread_pool_failure_is_wrapped_with_morsel_id(self):
        from concurrent.futures.process import BrokenProcessPool

        parallel.configure(threads=2, morsel_rows=4, min_parallel_rows=1)

        def kernel(start: int, stop: int) -> int:
            raise BrokenProcessPool("worker died")

        # no fallback available in thread mode: the failure surfaces as
        # an ExecutionError naming the offending morsel.  (Under ambient
        # REPRO_FAULTS an injected crash may land on this morsel first
        # and route it through the serial-retry path instead — the
        # kernel still fails, with the same morsel id in the message.)
        with pytest.raises(ExecutionError, match=r"morsel \d+:0"):
            parallel._run_tasks(kernel, [(0, 4)])


# -- malformed-row loading policies ---------------------------------------------------


class TestCsvOnError:
    CSV = "a,b\n1,x\n2,y\nbad_int,z\n4\n5,w\n"
    DTYPES = [DataType.INT64, DataType.STRING]

    def _write(self, tmp_path):
        path = tmp_path / "dirty.csv"
        path.write_text(self.CSV)
        return path

    def test_raise_is_the_default(self, tmp_path):
        with pytest.raises(LoadingError):
            read_csv(self._write(tmp_path), dtypes=self.DTYPES)

    def test_skip_drops_bad_rows_and_counts_them(self, tmp_path, registry):
        table = read_csv(self._write(tmp_path), dtypes=self.DTYPES, on_error="skip")
        assert table.num_rows == 3
        assert table.column("a").to_list() == [1, 2, 5]
        assert registry.counter("loading.rows_skipped").value == 2

    def test_null_keeps_rows_with_null_fields(self, tmp_path):
        table = read_csv(self._write(tmp_path), dtypes=self.DTYPES, on_error="null")
        assert table.num_rows == 5
        assert table.column("a").to_list() == [1, 2, None, None, 5]
        assert table.column("b").to_list() == ["x", "y", "z", None, "w"]

    def test_rejects_unknown_policy(self, tmp_path):
        with pytest.raises(ValueError):
            read_csv(self._write(tmp_path), dtypes=self.DTYPES, on_error="explode")

    def test_malformed_row_injection(self, tmp_path, registry):
        path = tmp_path / "clean.csv"
        path.write_text("a\n" + "\n".join(str(i) for i in range(50)) + "\n")
        assert read_csv(path).num_rows == 50
        resilience.configure(faults="malformed_row:1.0")
        with pytest.raises(LoadingError, match="injected"):
            read_csv(path)
        assert read_csv(path, on_error="skip").num_rows == 0
        assert registry.counter("loading.rows_skipped").value == 50


# -- tracer hygiene -------------------------------------------------------------------


class TestTracerUnwind:
    def test_unwind_closes_abandoned_spans(self):
        tracer = get_tracer()
        tracer.clear()
        tracer.enable()
        try:
            depth = tracer.open_depth()
            span_a = tracer.span("outer")
            span_a.__enter__()
            tracer.span("inner").__enter__()
            assert tracer.open_depth() == depth + 2
            closed = tracer.unwind(depth)
            assert closed == 2
            assert tracer.open_depth() == depth
            roots = [s.name for s in tracer.finished]
            assert "outer" in roots
        finally:
            tracer.disable()
            tracer.clear()

    def test_unwind_noop_when_clean(self):
        assert get_tracer().unwind() == 0
