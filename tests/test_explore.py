"""Tests for the exploration assistants: AIDE, QBO, SeeDB, facets,
diversification, suggestion, windows, refinement, segmentation, VizDeck."""

import numpy as np
import pytest

from repro.engine import Table, col
from repro.explore import (
    AideExplorer,
    FacetRecommender,
    ImpreciseQueryRefiner,
    QueryByOutput,
    QuerySuggester,
    SeeDB,
    SemanticWindowExplorer,
    VizDeck,
    diversity_score,
    mmr_diversify,
    segment_column,
    swap_diversify,
)
from repro.explore.diversify import topk_relevance
from repro.explore.segment import suggest_segmentations
from repro.workloads import grid_table, sales_table


class TestAide:
    def _setup(self, seed=0):
        rng = np.random.default_rng(seed)
        features = rng.uniform(0, 100, size=(3000, 2))
        truth = (
            (features[:, 0] >= 30)
            & (features[:, 0] <= 55)
            & (features[:, 1] >= 20)
            & (features[:, 1] <= 60)
        ).astype(int)
        return features, truth

    def test_f1_improves_with_labels(self):
        features, truth = self._setup()
        explorer = AideExplorer(
            features, oracle=lambda i: int(truth[i]), samples_per_round=30, seed=1
        )
        result = explorer.run(max_iterations=12, truth=truth)
        history = [f for f in result.f1_history if f > 0]
        assert history, "expected the classifier to find the region"
        assert history[-1] > 0.5
        assert max(history) >= history[0]

    def test_fewer_labels_than_full_scan(self):
        features, truth = self._setup(seed=2)
        explorer = AideExplorer(features, oracle=lambda i: int(truth[i]), seed=3)
        result = explorer.run(max_iterations=10, truth=truth)
        assert result.samples_labeled < len(features) / 4

    def test_predicate_sql_mentions_features(self):
        features, truth = self._setup(seed=4)
        explorer = AideExplorer(
            features, oracle=lambda i: int(truth[i]), samples_per_round=40, seed=5
        )
        result = explorer.run(max_iterations=10, truth=truth, stop_f1=0.6)
        sql = result.predicate_sql(["mag", "depth"])
        assert "mag" in sql or "depth" in sql


class TestQueryByOutput:
    @pytest.fixture()
    def table(self):
        rng = np.random.default_rng(6)
        return Table.from_dict(
            {
                "a": rng.uniform(0, 100, size=2000),
                "b": rng.uniform(0, 100, size=2000),
            }
        )

    def test_recovers_range_query(self, table):
        a = np.asarray(table.column("a").data)
        examples = np.flatnonzero((a >= 20) & (a <= 40)).tolist()
        qbo = QueryByOutput(table)
        recovered = qbo.discover(examples)
        assert recovered.f1 > 0.9
        assert "a" in recovered.where_sql

    def test_conjunctive_only_single_box(self, table):
        a = np.asarray(table.column("a").data)
        b = np.asarray(table.column("b").data)
        examples = np.flatnonzero((a >= 10) & (a <= 30) & (b >= 50)).tolist()
        recovered = QueryByOutput(table).discover(examples, conjunctive_only=True)
        assert len(recovered.boxes) == 1
        assert recovered.f1 > 0.7

    def test_no_examples_raises(self, table):
        with pytest.raises(ValueError):
            QueryByOutput(table).discover([])

    def test_needs_numeric_columns(self):
        table = Table.from_dict({"s": ["x", "y"]})
        with pytest.raises(ValueError):
            QueryByOutput(table)


class TestSeeDB:
    @pytest.fixture()
    def seedb(self):
        table = sales_table(8000, seed=7)
        return SeeDB(
            table,
            dimensions=["region", "category"],
            measures=["price", "quantity", "revenue", "discount"],
        )

    def test_candidate_space_size(self, seedb):
        assert len(seedb.candidate_views()) == 2 * 4 * 3

    def test_exact_topk_sorted(self, seedb):
        views = seedb.recommend(col("region") == "north", k=4, prune=False)
        assert len(views) == 4
        utilities = [v.utility for v in views]
        assert utilities == sorted(utilities, reverse=True)

    def test_pruning_preserves_top1(self, seedb):
        target = col("category") == "tools"
        exact = seedb.recommend(target, k=3, prune=False)
        pruned = seedb.recommend(target, k=3, prune=True, num_phases=8)
        assert pruned[0].spec == exact[0].spec

    def test_pruning_reduces_work(self, seedb):
        target = col("region") == "south"
        seedb.recommend(target, k=2, prune=True, num_phases=8)
        total = len(seedb.candidate_views())
        assert seedb.views_pruned > 0
        assert seedb.views_evaluated_fully < total

    def test_degenerate_target_raises(self, seedb):
        with pytest.raises(ValueError):
            seedb.recommend(col("region") == "nonexistent", k=2)


class TestDiversify:
    @pytest.fixture()
    def clustered_points(self):
        rng = np.random.default_rng(8)
        centers = np.asarray([[0, 0], [10, 10], [20, 0]])
        points = np.concatenate(
            [center + rng.normal(0, 0.5, size=(50, 2)) for center in centers]
        )
        relevance = rng.uniform(0.5, 1.0, size=len(points))
        relevance[:50] += 1.0  # first cluster is most relevant
        return points, relevance

    def test_mmr_more_diverse_than_topk(self, clustered_points):
        points, relevance = clustered_points
        top = topk_relevance(relevance, 10)
        diverse = mmr_diversify(points, relevance, 10, trade_off=0.3)
        assert diversity_score(points, diverse) > diversity_score(points, top)

    def test_lambda_one_is_pure_relevance(self, clustered_points):
        points, relevance = clustered_points
        selected = mmr_diversify(points, relevance, 5, trade_off=1.0)
        top = topk_relevance(relevance, 5)
        assert set(selected.tolist()) == set(top.tolist())

    def test_swap_improves_diversity(self, clustered_points):
        points, relevance = clustered_points
        top = topk_relevance(relevance, 8)
        swapped = swap_diversify(points, relevance, 8, min_relevance_fraction=0.3)
        assert diversity_score(points, swapped) >= diversity_score(points, top)

    def test_k_larger_than_n(self):
        points = np.asarray([[0.0, 0.0], [1.0, 1.0]])
        selected = mmr_diversify(points, np.asarray([1.0, 2.0]), 10)
        assert len(selected) == 2

    def test_mmr_spreads_across_clusters(self, clustered_points):
        points, relevance = clustered_points
        selected = mmr_diversify(points, relevance, 6, trade_off=0.2)
        clusters = {int(points[i, 0] // 7) for i in selected}
        assert len(clusters) >= 2


class TestFacets:
    @pytest.fixture()
    def table(self):
        return sales_table(5000, seed=9)

    def test_facets_of_biased_result(self, table):
        # high revenue rows skew toward expensive regions
        recommender = FacetRecommender(table)
        revenue = np.asarray(table.column("revenue").data)
        threshold = float(np.quantile(revenue, 0.9))
        facets = recommender.interesting_facets(
            col("revenue") > threshold, min_ratio=1.2
        )
        assert facets
        assert all(f.relevance_ratio >= 1.2 for f in facets)

    def test_recommended_tuples_outside_result(self, table):
        recommender = FacetRecommender(table)
        revenue = np.asarray(table.column("revenue").data)
        threshold = float(np.quantile(revenue, 0.9))
        predicate = col("revenue") > threshold
        recommended = recommender.recommend_tuples(predicate, k=10, min_ratio=1.2)
        if recommended.num_rows:
            assert max(recommended.column("revenue").to_list()) <= threshold

    def test_empty_result_gives_no_facets(self, table):
        recommender = FacetRecommender(table)
        assert recommender.interesting_facets(col("revenue") < -1) == []


class TestSuggester:
    Q_SCAN = "SELECT * FROM t WHERE a > 1"
    Q_PROJECT = "SELECT b FROM t WHERE a > 1"
    Q_GROUP = "SELECT b, COUNT(*) AS n FROM t GROUP BY b"
    SESSIONS = [
        [Q_SCAN, Q_PROJECT, Q_GROUP],
        [Q_SCAN, Q_PROJECT, Q_GROUP],
        [Q_SCAN, Q_PROJECT],
    ]

    def test_predicts_common_followup(self):
        suggester = QuerySuggester()
        for session in self.SESSIONS:
            suggester.observe_session(session)
        suggestions = suggester.suggest(["SELECT b FROM t WHERE a > 9"], k=2)
        assert any("GROUP BY b" in s.query for s in suggestions)

    def test_cold_start_uses_popularity(self):
        suggester = QuerySuggester()
        for session in self.SESSIONS:
            suggester.observe_session(session)
        suggestions = suggester.suggest([], k=1)
        assert suggestions

    def test_hit_rate_beats_zero(self):
        suggester = QuerySuggester()
        for session in self.SESSIONS[:2]:
            suggester.observe_session(session)
        assert suggester.hit_rate([self.SESSIONS[2]], k=3) > 0

    def test_already_seen_not_suggested(self):
        suggester = QuerySuggester()
        for session in self.SESSIONS:
            suggester.observe_session(session)
        history = [self.Q_SCAN, self.Q_PROJECT]
        suggestions = suggester.suggest(history, k=5)
        assert all(s.query not in history for s in suggestions)


class TestSemanticWindows:
    @pytest.fixture()
    def explorer(self):
        table = grid_table(side=64, value_fn="hotspots", num_hotspots=3, seed=10)
        return SemanticWindowExplorer(table, window_size=4, threshold=1.5)

    def test_exhaustive_finds_all(self, explorer):
        results = explorer.find_exhaustive()
        assert results
        for window in results:
            assert window.average >= explorer.threshold

    def test_online_matches_threshold(self, explorer):
        results = explorer.find_online(k=3, num_probes=128, seed=11)
        for window in results:
            assert window.average >= explorer.threshold

    def test_online_cheaper_for_first_result(self):
        table = grid_table(side=96, value_fn="hotspots", num_hotspots=2, seed=12)
        online = SemanticWindowExplorer(table, window_size=4, threshold=1.5)
        exhaustive = SemanticWindowExplorer(table, window_size=4, threshold=1.5)
        online_results = online.find_online(k=1, num_probes=200, seed=13)
        exhaustive_results = exhaustive.find_exhaustive(k=1)
        if online_results and exhaustive_results:
            assert online.windows_inspected <= exhaustive.windows_inspected * 2

    def test_window_average_matches_numpy(self, explorer):
        import numpy as np

        x, y = 5, 9
        w = explorer.window_size
        expected = float(explorer._grid[x : x + w, y : y + w].mean())
        assert explorer.window_average(x, y) == pytest.approx(expected)


class TestRefinement:
    @pytest.fixture()
    def refiner(self):
        rng = np.random.default_rng(14)
        table = Table.from_dict(
            {
                "mag": rng.uniform(0, 10, size=5000),
                "depth": rng.uniform(0, 100, size=5000),
            }
        )
        return ImpreciseQueryRefiner(table)

    def test_hits_cardinality_band(self, refiner):
        result = refiner.refine_to_cardinality(
            {"mag": (4.0, 6.0), "depth": (40.0, 60.0)}, target=(100, 300)
        )
        assert 100 <= result.cardinality <= 300

    def test_expands_when_too_few(self, refiner):
        result = refiner.refine_to_cardinality(
            {"mag": (5.0, 5.01), "depth": (50.0, 50.1)}, target=(500, 800)
        )
        assert result.scale > 1.0
        assert result.cardinality >= 400  # close to band even if not exact

    def test_contracts_when_too_many(self, refiner):
        result = refiner.refine_to_cardinality(
            {"mag": (0.0, 10.0), "depth": (0.0, 100.0)}, target=(50, 150)
        )
        assert result.scale < 1.0
        assert 50 <= result.cardinality <= 150

    def test_expand_to_include(self, refiner):
        result = refiner.expand_to_include(
            {"mag": (4.0, 5.0), "depth": (40.0, 50.0)}, required_rows=[0, 1, 2]
        )
        matrix = np.column_stack(
            [
                np.asarray(refiner.table.column("mag").data),
                np.asarray(refiner.table.column("depth").data),
            ]
        )
        for row in (0, 1, 2):
            assert result.ranges["mag"][0] <= matrix[row, 0] <= result.ranges["mag"][1]
            assert result.ranges["depth"][0] <= matrix[row, 1] <= result.ranges["depth"][1]

    def test_sql_rendering(self, refiner):
        result = refiner.refine_to_cardinality(
            {"mag": (4.0, 6.0)}, target=(10, 5000)
        )
        assert "BETWEEN" in result.to_sql()


class TestSegmentation:
    def test_finds_natural_breaks(self):
        rng = np.random.default_rng(15)
        values = np.concatenate(
            [rng.normal(0, 0.5, 500), rng.normal(10, 0.5, 500), rng.normal(20, 0.5, 500)]
        )
        segmentation = segment_column(values, 3)
        assert segmentation.num_segments == 3
        means = sorted(segmentation.means)
        assert abs(means[0] - 0) < 1.5
        assert abs(means[1] - 10) < 1.5
        assert abs(means[2] - 20) < 1.5

    def test_variance_decreases_with_k(self):
        rng = np.random.default_rng(16)
        values = rng.uniform(0, 100, size=2000)
        v2 = segment_column(values, 2).within_variance
        v5 = segment_column(values, 5).within_variance
        assert v5 < v2

    def test_counts_sum_to_total(self):
        values = np.random.default_rng(17).normal(size=1000)
        segmentation = segment_column(values, 4)
        assert sum(segmentation.counts) == 1000

    def test_suggest_orders_by_gain(self):
        rng = np.random.default_rng(18)
        values = np.concatenate([rng.normal(0, 1, 400), rng.normal(50, 1, 400)])
        proposals = suggest_segmentations(values, max_segments=5)
        # the 2-segment split captures almost all the structure
        assert proposals[0].num_segments == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            segment_column(np.empty(0), 2)


class TestVizDeck:
    def test_ranks_skewed_over_uniform_histogram(self):
        rng = np.random.default_rng(19)
        table = Table.from_dict(
            {
                "uniform": rng.uniform(0, 1, size=3000),
                "skewed": rng.lognormal(0, 1.5, size=3000),
            }
        )
        deck = VizDeck(table)
        candidates = {c.describe(): c.score for c in deck.candidates()}
        assert candidates["histogram(skewed)"] > candidates["histogram(uniform)"]

    def test_correlated_scatter_ranks_high(self):
        rng = np.random.default_rng(20)
        x = rng.normal(size=2000)
        table = Table.from_dict(
            {
                "x": x,
                "y_corr": x * 2 + rng.normal(0, 0.1, size=2000),
                "y_noise": rng.normal(size=2000),
            }
        )
        deck = VizDeck(table)
        scores = {c.describe(): c.score for c in deck.candidates()}
        assert scores["scatter(x, y_corr)"] > scores["scatter(x, y_noise)"]

    def test_feedback_shifts_ranking(self):
        rng = np.random.default_rng(21)
        table = Table.from_dict(
            {
                "a": rng.lognormal(0, 2, size=500),
                "cat": rng.choice(["u", "v", "w"], size=500).tolist(),
            }
        )
        deck = VizDeck(table)
        for _ in range(10):
            deck.feedback("histogram", positive=False)
            deck.feedback("bar", positive=True)
        ranked = deck.rank(k=2)
        assert ranked[0].kind == "bar"

    def test_unknown_feedback_kind_raises(self):
        deck = VizDeck(Table.from_dict({"a": [1.0, 2.0]}))
        with pytest.raises(ValueError):
            deck.feedback("sparkline", True)


class TestCachedDiversify:
    """DivIDE [41]: the diversification / cache-reuse interplay."""

    @pytest.fixture()
    def candidates(self):
        rng = np.random.default_rng(30)
        points = rng.uniform(0, 10, size=(120, 2))
        relevance = rng.uniform(0.5, 1.0, size=120)
        cached = np.zeros(120, dtype=bool)
        cached[:40] = True  # an earlier query cached a third of the items
        return points, relevance, cached

    def test_penalty_pulls_selection_toward_cache(self, candidates):
        from repro.explore import cached_diversify

        points, relevance, cached = candidates
        free = cached_diversify(points, relevance, cached, k=10, fetch_penalty=0.0)
        costly = cached_diversify(points, relevance, cached, k=10, fetch_penalty=1.0)
        assert cached[costly].sum() >= cached[free].sum()
        assert cached[costly].sum() == 10  # prohibitive penalty: cache only

    def test_zero_penalty_recovers_mmr(self, candidates):
        from repro.explore import cached_diversify, mmr_diversify

        points, relevance, cached = candidates
        a = cached_diversify(points, relevance, cached, k=8, fetch_penalty=0.0)
        b = mmr_diversify(points, relevance, k=8)
        assert a.tolist() == b.tolist()

    def test_diversity_degrades_gracefully_with_penalty(self, candidates):
        from repro.explore import cached_diversify, diversity_score

        points, relevance, cached = candidates
        scores = []
        for penalty in (0.0, 0.2, 1.0):
            chosen = cached_diversify(
                points, relevance, cached, k=10, trade_off=0.4, fetch_penalty=penalty
            )
            scores.append(diversity_score(points, chosen))
        # diversity never *improves* as the cache constraint tightens
        assert scores[0] >= scores[2] - 1e-9
