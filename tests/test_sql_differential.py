"""Differential testing: vectorised engine vs the reference interpreter.

Hundreds of seeded random queries over random tables (with NULLs) are
executed three ways — the reference interpreter, the plain engine, and
the engine with a cracker index registered (exercising the index-probe
plan path) — and all three must agree.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.engine import Database, Table
from repro.engine.sql.parser import parse
from repro.indexing import CrackerIndex
from tests.reference_interpreter import run_reference

WORDS = ["ant", "bee", "cat", "dog", "elk", "fox"]


def random_table(rng: np.random.Generator, n: int) -> tuple[Table, list[dict]]:
    rows = []
    for i in range(n):
        rows.append(
            {
                "id": i,
                "a": int(rng.integers(-20, 20)) if rng.random() > 0.1 else None,
                "b": round(float(rng.uniform(-5, 5)), 3) if rng.random() > 0.1 else None,
                "s": str(rng.choice(WORDS)) if rng.random() > 0.1 else None,
            }
        )
    table = Table.from_dict(
        {
            "id": [r["id"] for r in rows],
            "a": [r["a"] for r in rows],
            "b": [r["b"] for r in rows],
            "s": [r["s"] for r in rows],
        }
    )
    return table, rows


def random_predicate(rng: np.random.Generator, depth: int = 0) -> str:
    choice = rng.integers(0, 8 if depth < 2 else 6)
    if choice == 0:
        return f"a {rng.choice(['<', '<=', '>', '>=', '=', '<>'])} {rng.integers(-20, 20)}"
    if choice == 1:
        return f"b {rng.choice(['<', '>'])} {round(float(rng.uniform(-5, 5)), 2)}"
    if choice == 2:
        return f"s = '{rng.choice(WORDS)}'"
    if choice == 3:
        low = int(rng.integers(-20, 10))
        return f"a BETWEEN {low} AND {low + int(rng.integers(0, 15))}"
    if choice == 4:
        values = ", ".join(str(int(v)) for v in rng.integers(-20, 20, size=3))
        return f"a IN ({values})"
    if choice == 5:
        return rng.choice([
            "a IS NULL", "a IS NOT NULL", "s IS NULL",
            f"s LIKE '{rng.choice(['a%', '%t', '_o%', '%e%'])}'",
        ])
    connector = "AND" if rng.random() < 0.5 else "OR"
    left = random_predicate(rng, depth + 1)
    right = random_predicate(rng, depth + 1)
    if rng.random() < 0.25:
        return f"NOT ({left})"
    return f"({left}) {connector} ({right})"


def random_query(rng: np.random.Generator) -> str:
    kind = rng.integers(0, 4)
    where = f" WHERE {random_predicate(rng)}" if rng.random() < 0.8 else ""
    if kind == 0:  # plain projection
        distinct = "DISTINCT " if rng.random() < 0.2 else ""
        items = rng.choice(
            ["id, a, b", "id, a", "id, a + 1 AS a1, b * 2 AS b2", "id, s", "*"]
        )
        order = " ORDER BY id" if rng.random() < 0.7 else ""
        limit = f" LIMIT {rng.integers(0, 20)}" if order and rng.random() < 0.4 else ""
        return f"SELECT {distinct}{items} FROM t{where}{order}{limit}"
    if kind == 1:  # global aggregates
        aggs = rng.choice(
            [
                "COUNT(*) AS n, SUM(a) AS sa",
                "AVG(b) AS m, MIN(a) AS lo, MAX(a) AS hi",
                "COUNT(a) AS ca, COUNT(DISTINCT s) AS ds",
            ]
        )
        return f"SELECT {aggs} FROM t{where}"
    if kind == 2:  # group by
        having = " HAVING COUNT(*) > 1" if rng.random() < 0.4 else ""
        return (
            f"SELECT s, COUNT(*) AS n, SUM(a) AS sa FROM t{where} "
            f"GROUP BY s{having}"
        )
    # expressions with functions/CASE
    items = rng.choice(
        [
            "id, ABS(a) AS aa",
            "id, CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'zero' END AS sign",
            "id, UPPER(s) AS u",
            "id, ROUND(b, 1) AS rb",
        ]
    )
    return f"SELECT {items} FROM t{where} ORDER BY id"


def normalise(rows: list[tuple]) -> list[tuple]:
    out = []
    for row in rows:
        norm = []
        for value in row:
            if isinstance(value, bool):
                norm.append(bool(value))
            elif isinstance(value, float):
                if math.isnan(value):
                    norm.append("nan")
                else:
                    norm.append(round(value, 6))
            elif isinstance(value, (int, np.integer)):
                norm.append(round(float(value), 6))
            else:
                norm.append(value)
        out.append(tuple(norm))
    return out


def _sort_key(row: tuple):
    return tuple(
        (0, "") if v is None else (1, str(type(v).__name__), str(v)) for v in row
    )


@pytest.mark.parametrize("seed", range(30))
def test_differential_random_queries(seed: int) -> None:
    rng = np.random.default_rng(seed)
    table, rows = random_table(rng, n=int(rng.integers(5, 80)))

    plain = Database()
    plain.create_table("t", table)
    indexed = Database()
    indexed.create_table("t", table)
    a_values = np.asarray(
        [r["a"] if r["a"] is not None else -999 for r in rows], dtype=np.int64
    )
    # note: the index is registered on the physical column, which parks
    # nulls at a sentinel — mirror that in the reference by not indexing
    # when nulls are present (the planner guards nulls via the residual
    # predicate anyway only for non-null semantics; be conservative)
    if all(r["a"] is not None for r in rows):
        indexed.register_index("t", "a", CrackerIndex(a_values))

    for _ in range(12):
        sql = random_query(rng)
        statement = parse(sql)
        expected = normalise(run_reference(statement, [dict(r) for r in rows]))
        got_plain = normalise([tuple(r) for r in plain.sql(sql).rows()])
        got_indexed = normalise([tuple(r) for r in indexed.sql(sql).rows()])
        ordered = bool(statement.order_by)
        if ordered:
            assert got_plain == expected, f"plain engine disagrees on: {sql}"
            assert got_indexed == expected, f"indexed engine disagrees on: {sql}"
        else:
            assert sorted(got_plain, key=_sort_key) == sorted(expected, key=_sort_key), (
                f"plain engine disagrees on: {sql}"
            )
            assert sorted(got_indexed, key=_sort_key) == sorted(
                expected, key=_sort_key
            ), f"indexed engine disagrees on: {sql}"
