"""Tests for the prefetching middleware."""

import numpy as np
import pytest

from repro.prefetch import (
    CubeNavigator,
    MarkovPredictor,
    SpeculativeExecutor,
    TileCache,
    TrajectoryIndex,
)
from repro.prefetch.cube import MoveBasedRegionPredictor
from repro.workloads import (
    SessionConfig,
    CubeSessionGenerator,
    generate_sessions,
    sales_table,
)


class TestTileCache:
    def test_put_get(self):
        cache = TileCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1

    def test_miss_counted(self):
        cache = TileCache(capacity=2)
        assert cache.get("zzz") is None
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = TileCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_peek_does_not_affect_stats(self):
        cache = TileCache(capacity=2)
        cache.put("a", 1)
        cache.peek("a")
        cache.peek("zzz")
        assert cache.stats.requests == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TileCache(capacity=0)


class TestMarkov:
    def test_learns_deterministic_sequence(self):
        predictor = MarkovPredictor(order=1)
        predictor.observe_sequence(["a", "b", "a", "b", "a", "b"] * 10)
        assert predictor.predict(["a"], k=1) == ["b"]
        assert predictor.predict(["b"], k=1) == ["a"]

    def test_order2_disambiguates(self):
        # after (a, b) -> c; after (x, b) -> d
        predictor = MarkovPredictor(order=2)
        for _ in range(10):
            predictor.observe_sequence(["a", "b", "c"])
            predictor.observe_sequence(["x", "b", "d"])
        assert predictor.predict(["a", "b"], k=1) == ["c"]
        assert predictor.predict(["x", "b"], k=1) == ["d"]

    def test_accuracy_on_persistent_sessions(self):
        sessions = generate_sessions(
            20, SessionConfig(length=40, persistence=0.9), seed=0
        )
        move_sessions = [[s.move for s in session[1:]] for session in sessions]
        predictor = MarkovPredictor(order=1)
        for session in move_sessions[:15]:
            predictor.observe_sequence(session)
        accuracy = predictor.accuracy(move_sessions[15:])
        assert accuracy > 0.5  # persistence 0.9 makes repetition dominant

    def test_empty_model_predicts_nothing(self):
        assert MarkovPredictor().predict(["a"], k=1) == []

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            MarkovPredictor(order=0)


class TestTrajectoryIndex:
    def test_predicts_shared_continuation(self):
        index = TrajectoryIndex(max_suffix=2)
        for _ in range(5):
            index.index_trajectory(["r1", "r2", "r3", "r4"])
        assert index.predict(["r2", "r3"], k=1) == ["r4"]

    def test_longer_suffix_wins(self):
        index = TrajectoryIndex(max_suffix=2)
        for _ in range(10):
            index.index_trajectory(["a", "b", "c"])
        for _ in range(3):
            index.index_trajectory(["z", "b", "d"])
        # context (a, b) should predict c despite (b,) votes being mixed
        assert index.predict(["a", "b"], k=1) == ["c"]

    def test_unknown_path_gives_nothing(self):
        index = TrajectoryIndex()
        index.index_trajectory(["a", "b"])
        assert index.predict(["zzz"], k=1) == []


class TestCubeNavigator:
    @pytest.fixture()
    def navigator(self):
        table = sales_table(5000, seed=1)
        return CubeNavigator(
            table, "price", "quantity", "revenue", levels=3, base_tiles=4
        )

    def test_tile_aggregate_matches_numpy(self, navigator):
        tile = navigator.compute_tile((0, 0, 0))
        (x_lo, x_hi), (y_lo, y_hi) = navigator.tile_bounds((0, 0, 0))
        mask = (
            (navigator._x >= x_lo)
            & (navigator._x <= x_hi)
            & (navigator._y >= y_lo)
            & (navigator._y <= y_hi)
        )
        assert tile.row_count == int(mask.sum())
        if tile.row_count:
            assert tile.aggregate == pytest.approx(
                float(navigator._measure[mask].mean())
            )

    def test_invalid_region_raises(self, navigator):
        with pytest.raises(ValueError):
            navigator.compute_tile((9, 0, 0))

    def test_moves_round_trip(self, navigator):
        region = (1, 3, 3)
        drilled = navigator.apply_move(region, "drill")
        assert drilled[0] == 2
        rolled = navigator.apply_move(drilled, "roll")
        assert rolled == region

    def test_infer_move_inverse_of_apply(self, navigator):
        region = (1, 4, 4)
        for move in ("left", "right", "up", "down", "drill", "roll"):
            target = navigator.apply_move(region, move)
            if target != region:
                assert navigator.infer_move(region, target) == move

    def test_neighbours_are_valid(self, navigator):
        for neighbour in navigator.neighbours((1, 0, 0)):
            assert navigator.region_is_valid(neighbour)


class TestSpeculativeExecution:
    def _run_session(self, predictor, fanout, seed=2):
        table = sales_table(3000, seed=seed)
        navigator = CubeNavigator(
            table, "price", "quantity", "revenue", levels=4, base_tiles=4
        )
        cache = TileCache(capacity=128)
        executor = SpeculativeExecutor(
            compute=navigator.compute_tile,
            cache=cache,
            predictor=predictor(navigator) if predictor else None,
            fanout=fanout,
        )
        config = SessionConfig(length=80, grid_side=32, levels=4, persistence=0.85)
        generator = CubeSessionGenerator(config, seed=seed)
        session = generator.session()
        for step in session:
            executor.request(step.region)
        return executor

    def test_prefetching_beats_no_prefetching(self):
        def make_predictor(navigator):
            model = MarkovPredictor(order=1)
            # pre-train on similar sessions
            for session in generate_sessions(
                10, SessionConfig(length=60, persistence=0.85), seed=9
            ):
                model.observe_sequence([s.move for s in session[1:]])
            return MoveBasedRegionPredictor(navigator, model)

        with_prefetch = self._run_session(make_predictor, fanout=3)
        without = self._run_session(None, fanout=0)
        assert with_prefetch.hit_rate > without.hit_rate

    def test_background_work_is_accounted(self):
        def make_predictor(navigator):
            model = MarkovPredictor(order=1)
            model.observe_sequence(["right"] * 20)
            return MoveBasedRegionPredictor(navigator, model)

        executor = self._run_session(make_predictor, fanout=2)
        assert executor.background_cost > 0
        assert executor.foreground_cost > 0
