"""Tests for the novel interfaces and the visualization optimisations."""

import numpy as np
import pytest

from repro.engine import Database, Table
from repro.errors import InterfaceError, ReproError
from repro.interface import (
    DbTouch,
    GestureClassifier,
    GestureQuerySession,
    KeywordSearchEngine,
    TouchPoint,
)
from repro.interface.keyword import ForeignKey
from repro.viz import OrderedSampler, VizSpec, compile_spec, m4_reduce, reduction_error


class TestDbTouch:
    @pytest.fixture()
    def touch(self):
        rng = np.random.default_rng(0)
        table = Table.from_dict({"v": rng.uniform(0, 100, size=10_000)})
        return DbTouch(table, slice_rows=50)

    def test_touch_processes_one_slice(self, touch):
        summary = touch.touch("v", 0.5)
        assert summary.rows_seen == 50
        assert touch.rows_touched == 50

    def test_retouching_is_free(self, touch):
        touch.touch("v", 0.5)
        touch.touch("v", 0.5)
        assert touch.rows_touched == 50

    def test_slide_covers_range(self, touch):
        summary = touch.slide("v", 0.0, 0.2, steps=20)
        assert summary.rows_seen > 50
        assert summary.fraction_explored < 0.5

    def test_work_proportional_to_interaction_not_data(self):
        rng = np.random.default_rng(1)
        small = DbTouch(Table.from_dict({"v": rng.uniform(size=1000)}), slice_rows=10)
        large = DbTouch(Table.from_dict({"v": rng.uniform(size=100_000)}), slice_rows=10)
        small.touch("v", 0.3)
        large.touch("v", 0.3)
        assert small.rows_touched == large.rows_touched == 10

    def test_stats_match_touched_data(self, touch):
        touch.slide("v", 0.0, 1.0, steps=300)  # touch essentially everything
        summary = touch.summary("v")
        values = np.asarray(touch.table.column("v").data)
        if summary.fraction_explored > 0.99:
            assert summary.mean == pytest.approx(float(values.mean()), rel=0.01)

    def test_non_numeric_column_raises(self):
        touch = DbTouch(Table.from_dict({"s": ["a", "b"]}))
        with pytest.raises(InterfaceError):
            touch.touch("s", 0.5)

    def test_bad_position_raises(self, touch):
        with pytest.raises(InterfaceError):
            touch.touch("v", 1.5)


def _swipe(direction: int) -> list[TouchPoint]:
    xs = np.linspace(0.5, 0.5 + 0.3 * direction, 10)
    return [TouchPoint(float(x), 0.5, i * 0.01) for i, x in enumerate(xs)]


class TestGestures:
    def test_tap_classification(self):
        trace = [TouchPoint(0.5, 0.5, 0.0), TouchPoint(0.501, 0.5, 0.05)]
        assert GestureClassifier().classify(trace).kind == "tap"

    def test_swipe_directions(self):
        classifier = GestureClassifier()
        assert classifier.classify(_swipe(+1)).kind == "swipe-right"
        assert classifier.classify(_swipe(-1)).kind == "swipe-left"

    def test_pinch_and_spread(self):
        classifier = GestureClassifier()
        pinch = [
            TouchPoint(0.2, 0.5, 0.0, finger=0),
            TouchPoint(0.8, 0.5, 0.0, finger=1),
            TouchPoint(0.45, 0.5, 0.2, finger=0),
            TouchPoint(0.55, 0.5, 0.2, finger=1),
        ]
        assert classifier.classify(pinch).kind == "pinch"
        spread = [
            TouchPoint(0.45, 0.5, 0.0, finger=0),
            TouchPoint(0.55, 0.5, 0.0, finger=1),
            TouchPoint(0.2, 0.5, 0.2, finger=0),
            TouchPoint(0.8, 0.5, 0.2, finger=1),
        ]
        assert classifier.classify(spread).kind == "spread"

    def test_ranking_is_complete(self):
        gesture = GestureClassifier().classify(_swipe(+1))
        assert len(gesture.ranking) == len(GestureClassifier.VOCABULARY)

    def test_session_sort_and_undo(self):
        table = Table.from_dict({"a": [3, 1, 2], "b": ["x", "y", "z"]})
        session = GestureQuerySession(table)
        session.apply_gesture("swipe-right", "a")
        assert session.current.column("a").to_list() == [1, 2, 3]
        session.apply_gesture("spread", "a")
        assert session.current.column("a").to_list() == [3, 1, 2]

    def test_session_group_by(self):
        table = Table.from_dict({"cat": ["u", "v", "u", "u"]})
        session = GestureQuerySession(table)
        message = session.apply_gesture("pinch", "cat")
        assert "2 groups" in message
        assert session.current.num_rows == 2

    def test_unknown_column_raises(self):
        session = GestureQuerySession(Table.from_dict({"a": [1]}))
        with pytest.raises(InterfaceError):
            session.apply_gesture("tap", "zzz")


class TestKeywordSearch:
    @pytest.fixture()
    def engine(self):
        db = Database()
        db.create_table(
            "authors",
            {
                "author_id": [1, 2, 3],
                "name": ["Ada Lovelace", "Alan Turing", "Grace Hopper"],
            },
        )
        db.create_table(
            "papers",
            {
                "paper_id": [10, 11, 12],
                "author_id": [1, 2, 2],
                "title": [
                    "Notes on the Analytical Engine",
                    "On Computable Numbers",
                    "Computing Machinery and Intelligence",
                ],
            },
        )
        db.create_table(
            "venues",
            {"venue_id": [100], "venue": ["Mind Journal"]},
        )
        fks = [ForeignKey("papers", "author_id", "authors", "author_id")]
        return KeywordSearchEngine(db, fks)

    def test_single_table_answer(self, engine):
        results = engine.search(["Turing"])
        assert results
        assert results[0].tables == ("authors",)

    def test_cross_table_answer(self, engine):
        results = engine.search(["Turing", "Computable"])
        assert results
        best = results[0]
        assert set(best.tables) == {"authors", "papers"}
        assert best.rows.num_rows == 1

    def test_compact_networks_rank_first(self, engine):
        results = engine.search(["Computing"])
        assert results[0].tables == ("papers",)

    def test_no_match_gives_empty(self, engine):
        assert engine.search(["xylophone"]) == []

    def test_empty_keywords_raise(self, engine):
        with pytest.raises(InterfaceError):
            engine.search([])


class TestM4:
    def test_reduction_size_bounded(self):
        rng = np.random.default_rng(2)
        x = np.arange(50_000, dtype=float)
        y = np.cumsum(rng.normal(size=50_000))
        rx, ry = m4_reduce(x, y, width=100)
        assert len(rx) <= 4 * 100
        assert len(rx) == len(ry)

    def test_small_series_unchanged(self):
        x = np.arange(10, dtype=float)
        y = x * 2
        rx, ry = m4_reduce(x, y, width=100)
        assert len(rx) == 10

    def test_extremes_preserved(self):
        x = np.arange(10_000, dtype=float)
        y = np.sin(x / 100.0)
        y[5000] = 50.0  # a spike
        rx, ry = m4_reduce(x, y, width=50)
        assert 50.0 in ry

    def test_m4_beats_uniform_sampling(self):
        rng = np.random.default_rng(3)
        x = np.arange(20_000, dtype=float)
        y = np.cumsum(rng.normal(size=20_000))
        width = 100
        m4x, m4y = m4_reduce(x, y, width)
        stride = max(1, len(x) // len(m4x))
        ux, uy = x[::stride], y[::stride]
        m4_error = reduction_error(x, y, m4x, m4y, width=width)
        uniform_error = reduction_error(x, y, ux, uy, width=width)
        assert m4_error <= uniform_error

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            m4_reduce(np.arange(3), np.arange(4), 10)


class TestOrderedSampler:
    def _make(self, gaps, per_group=5000, seed=4):
        rng = np.random.default_rng(seed)
        groups, values = [], []
        for i, mean in enumerate(np.cumsum(gaps)):
            groups.extend([f"g{i}"] * per_group)
            values.extend(rng.normal(mean, 1.0, size=per_group).tolist())
        return OrderedSampler(groups, np.asarray(values), seed=seed)

    def test_recovers_true_order_with_wide_gaps(self):
        sampler = self._make([0, 10, 10, 10])
        result = sampler.run()
        assert result.order == sampler.true_order()

    def test_samples_far_below_full_scan(self):
        sampler = self._make([0, 8, 8, 8])
        result = sampler.run()
        assert result.total_samples < 4 * 5000 * 0.2

    def test_close_groups_need_more_samples(self):
        wide = self._make([0, 20], seed=5).run()
        narrow = self._make([0, 0.1], seed=5).run()
        assert narrow.total_samples > wide.total_samples


class TestVizSpec:
    def test_aggregate_bar_compiles_to_group_by(self):
        spec = VizSpec(mark="bar", table="sales", x="region", y="revenue", aggregate="avg")
        compiled = compile_spec(spec)
        assert "GROUP BY region" in compiled.sql
        assert "AVG(revenue)" in compiled.sql
        assert not compiled.needs_m4

    def test_raw_line_flags_m4(self):
        spec = VizSpec(mark="line", table="ticks", x="t", y="price")
        compiled = compile_spec(spec)
        assert compiled.needs_m4

    def test_count_bar_without_y(self):
        spec = VizSpec(mark="bar", table="sales", x="region", aggregate="count")
        assert "COUNT(*)" in compile_spec(spec).sql

    def test_where_and_limit(self):
        spec = VizSpec(
            mark="bar", table="t", x="a", y="b", aggregate="sum",
            where="b > 10", limit=5, descending=True,
        )
        sql = compile_spec(spec).sql
        assert "WHERE b > 10" in sql and "LIMIT 5" in sql and "DESC" in sql

    def test_compiled_sql_actually_runs(self):
        db = Database()
        db.create_table("t", {"a": ["x", "y", "x"], "b": [1.0, 2.0, 3.0]})
        spec = VizSpec(mark="bar", table="t", x="a", y="b", aggregate="sum")
        result = db.sql(compile_spec(spec).sql)
        assert result.num_rows == 2

    @pytest.mark.parametrize(
        "spec",
        [
            VizSpec(mark="sparkline", table="t", x="a"),  # type: ignore[arg-type]
            VizSpec(mark="line", table="t", x="a"),
            VizSpec(mark="bar", table="t", x="", aggregate="count"),
            VizSpec(mark="bar", table="t", x="a", aggregate="median"),  # type: ignore[arg-type]
        ],
    )
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(ReproError):
            compile_spec(spec)
