"""Tests for the extended SQL dialect: LIKE, functions, CASE, DISTINCT,
and the DDL/DML statements."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database, Table
from repro.engine.sql.parser import parse, parse_statement
from repro.errors import CatalogError, ParseError, TypeMismatchError


@pytest.fixture()
def db():
    database = Database()
    database.create_table(
        "t",
        {
            "a": [1, 2, 3, 4],
            "b": [1.44, -2.25, 9.0, 16.0],
            "s": ["apple", "Banana", "cherry pie", None],
        },
    )
    return database


class TestLike:
    def test_prefix_suffix_substring(self, db):
        assert db.sql("SELECT a FROM t WHERE s LIKE 'a%'").column("a").to_list() == [1]
        assert db.sql("SELECT a FROM t WHERE s LIKE '%pie'").column("a").to_list() == [3]
        assert db.sql("SELECT a FROM t WHERE s LIKE '%an%'").column("a").to_list() == [2]

    def test_underscore_wildcard(self, db):
        assert db.sql("SELECT a FROM t WHERE s LIKE '_pple'").column("a").to_list() == [1]

    def test_not_like(self, db):
        result = db.sql("SELECT a FROM t WHERE s NOT LIKE '%a%'")
        # 'cherry pie' has no 'a'; NULL row is dropped
        assert result.column("a").to_list() == [3]

    def test_case_sensitive(self, db):
        assert db.sql("SELECT a FROM t WHERE s LIKE 'banana'").num_rows == 0

    def test_regex_metacharacters_escaped(self):
        database = Database()
        database.create_table("x", {"s": ["a.c", "abc"]})
        result = database.sql("SELECT s FROM x WHERE s LIKE 'a.c'")
        assert result.column("s").to_list() == ["a.c"]


class TestFunctions:
    def test_numeric_functions(self, db):
        result = db.sql("SELECT ABS(b) AS v FROM t ORDER BY a")
        assert result.column("v").to_list() == [1.44, 2.25, 9.0, 16.0]
        result = db.sql("SELECT SQRT(ABS(b)) AS v FROM t WHERE a = 3")
        assert result.column("v").to_list() == [3.0]

    def test_round_with_digits(self, db):
        result = db.sql("SELECT ROUND(b, 1) AS v FROM t WHERE a = 1")
        assert result.column("v").to_list() == [1.4]

    def test_floor_ceil(self, db):
        result = db.sql("SELECT FLOOR(b) AS f, CEIL(b) AS c FROM t WHERE a = 1")
        assert result.to_dicts() == [{"f": 1.0, "c": 2.0}]

    def test_sqrt_of_negative_is_null(self, db):
        result = db.sql("SELECT SQRT(b) AS v FROM t WHERE a = 2")
        assert result.column("v").to_list() == [None]

    def test_string_functions(self, db):
        result = db.sql("SELECT LENGTH(s) AS l, UPPER(s) AS u, LOWER(s) AS d FROM t WHERE a = 2")
        assert result.to_dicts() == [{"l": 6, "u": "BANANA", "d": "banana"}]

    def test_null_propagates(self, db):
        result = db.sql("SELECT UPPER(s) AS u FROM t WHERE a = 4")
        assert result.column("u").to_list() == [None]

    def test_type_errors(self, db):
        with pytest.raises(TypeMismatchError):
            db.sql("SELECT ABS(s) FROM t")
        with pytest.raises(TypeMismatchError):
            db.sql("SELECT LENGTH(a) FROM t")

    def test_abs_preserves_int(self, db):
        result = db.sql("SELECT ABS(a) AS v FROM t LIMIT 1")
        assert result.schema.type_of("v").name == "INT64"


class TestCase:
    def test_basic_branches(self, db):
        result = db.sql(
            "SELECT a, CASE WHEN a <= 2 THEN 'low' ELSE 'high' END AS bucket "
            "FROM t ORDER BY a"
        )
        assert result.column("bucket").to_list() == ["low", "low", "high", "high"]

    def test_first_match_wins(self, db):
        result = db.sql(
            "SELECT CASE WHEN a > 0 THEN 'pos' WHEN a > 2 THEN 'big' END AS c "
            "FROM t WHERE a = 3"
        )
        assert result.column("c").to_list() == ["pos"]

    def test_no_else_gives_null(self, db):
        result = db.sql("SELECT CASE WHEN a > 100 THEN 1 END AS c FROM t LIMIT 1")
        assert result.column("c").to_list() == [None]

    def test_numeric_promotion(self, db):
        result = db.sql(
            "SELECT CASE WHEN a = 1 THEN 1 ELSE 2.5 END AS c FROM t ORDER BY a LIMIT 2"
        )
        assert result.column("c").to_list() == [1.0, 2.5]

    def test_case_without_when_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT CASE END FROM t")


class TestDistinct:
    def test_distinct_rows(self):
        db = Database()
        db.create_table("d", {"a": [1, 1, 2, 2, 2], "b": ["x", "x", "y", "y", "z"]})
        result = db.sql("SELECT DISTINCT a, b FROM d ORDER BY a, b")
        assert result.to_dicts() == [
            {"a": 1, "b": "x"}, {"a": 2, "b": "y"}, {"a": 2, "b": "z"},
        ]

    def test_distinct_single_column(self):
        db = Database()
        db.create_table("d", {"a": [3, 1, 3, 2, 1]})
        result = db.sql("SELECT DISTINCT a FROM d ORDER BY a")
        assert result.column("a").to_list() == [1, 2, 3]

    def test_distinct_roundtrips(self):
        statement = parse("SELECT DISTINCT a FROM t")
        assert statement.distinct
        assert "DISTINCT" in statement.to_sql()


class TestDML:
    def test_create_insert_select(self):
        db = Database()
        db.execute("CREATE TABLE people (name TEXT, age INT, score FLOAT)")
        affected = db.execute(
            "INSERT INTO people VALUES ('ann', 31, 9.5), ('bob', 25, 7.0)"
        )
        assert affected == 2
        result = db.sql("SELECT name FROM people WHERE age > 30")
        assert result.column("name").to_list() == ["ann"]

    def test_insert_with_column_list_fills_nulls(self):
        db = Database()
        db.execute("CREATE TABLE p (a INT, b FLOAT)")
        db.execute("INSERT INTO p (a) VALUES (7)")
        assert db.sql("SELECT b FROM p").column("b").to_list() == [None]

    def test_update(self):
        db = Database()
        db.create_table("u", {"a": [1, 2, 3], "b": [10.0, 20.0, 30.0]})
        affected = db.execute("UPDATE u SET b = b + 1 WHERE a >= 2")
        assert affected == 2
        assert db.sql("SELECT b FROM u ORDER BY a").column("b").to_list() == [
            10.0, 21.0, 31.0,
        ]

    def test_delete(self):
        db = Database()
        db.create_table("u", {"a": [1, 2, 3]})
        assert db.execute("DELETE FROM u WHERE a = 2") == 1
        assert db.sql("SELECT a FROM u ORDER BY a").column("a").to_list() == [1, 3]

    def test_delete_all(self):
        db = Database()
        db.create_table("u", {"a": [1, 2, 3]})
        assert db.execute("DELETE FROM u") == 3
        assert db.sql("SELECT COUNT(*) AS n FROM u").to_dicts() == [{"n": 0}]

    def test_drop(self):
        db = Database()
        db.execute("CREATE TABLE gone (a INT)")
        db.execute("DROP TABLE gone")
        assert not db.has_table("gone")

    def test_mutation_invalidates_indexes(self):
        from repro.indexing import CrackerIndex

        db = Database()
        db.create_table("u", {"a": list(range(100))})
        db.register_index("u", "a", CrackerIndex(np.arange(100)))
        db.execute("INSERT INTO u VALUES (200)")
        assert db.index_for("u", "a") is None  # stale index dropped
        result = db.sql("SELECT COUNT(*) AS n FROM u WHERE a >= 50")
        assert result.to_dicts() == [{"n": 51}]

    def test_bad_statements(self):
        db = Database()
        db.execute("CREATE TABLE z (a INT)")
        with pytest.raises(CatalogError):
            db.execute("INSERT INTO z (nope) VALUES (1)")
        with pytest.raises(CatalogError):
            db.execute("INSERT INTO z VALUES (1, 2)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE w (a BLOB)")
        with pytest.raises(ParseError):
            parse_statement("MERGE INTO z")

    def test_statement_roundtrips(self):
        for sql in (
            "INSERT INTO t (a, b) VALUES (1, 2.5)",
            "DELETE FROM t WHERE (a = 1)",
            "UPDATE t SET a = (a + 1) WHERE (a > 0)",
            "CREATE TABLE t (a INT, b TEXT)",
            "DROP TABLE t",
        ):
            statement = parse_statement(sql)
            again = parse_statement(statement.to_sql())
            assert again.to_sql() == statement.to_sql()

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.integers(-50, 50), min_size=1, max_size=20),
        threshold=st.integers(-50, 50),
    )
    def test_property_delete_matches_filter(self, values, threshold):
        db = Database()
        db.create_table("v", {"a": values})
        deleted = db.execute(f"DELETE FROM v WHERE a < {threshold}")
        expected_kept = [v for v in values if not (v < threshold)]
        assert deleted == len(values) - len(expected_kept)
        assert sorted(db.get_table("v").column("a").to_list()) == sorted(expected_kept)
