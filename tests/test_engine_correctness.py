"""Regression tests for engine correctness fixes shipped with the
parallel-executor PR.

Covers: the ``Expression.same_as`` structural-equality contract (plain
``==`` builds a ``Comparison`` node, so ``in`` / set / dict membership
silently misbehave on expressions), hash-join output-name dedup when the
left table already owns a ``right_<x>`` column, SQL division semantics
(``x / 0`` is NULL, never an error or warning), and join edge cases
around empty inputs, key-type coercion and NULL keys.
"""

import warnings

import pytest

from repro.engine import operators as ops
from repro.engine.catalog import Database
from repro.engine.expressions import Comparison, col, lit
from repro.engine.table import Table


@pytest.fixture()
def db() -> Database:
    return Database()


# -- Expression equality contract ------------------------------------------------------


class TestExpressionSameAs:
    def test_double_equals_builds_a_node_not_a_bool(self) -> None:
        result = col("a") == col("a")
        assert isinstance(result, Comparison)

    def test_membership_via_double_equals_is_meaningless(self) -> None:
        # `in` calls __eq__, which returns a (truthy) Comparison node, so
        # ANY expression appears to be a member of ANY non-empty list.
        # This is exactly why equality-sensitive code must use same_as().
        assert (col("b") > 7) in [col("a") > 5]

    def test_same_as_true_for_identical_structure(self) -> None:
        assert (col("a") > lit(5)).same_as(col("a") > lit(5))
        assert col("x").same_as(col("x"))

    def test_same_as_false_for_different_structure(self) -> None:
        assert not (col("a") > lit(5)).same_as(col("a") > lit(6))
        assert not (col("a") > lit(5)).same_as(col("b") > lit(5))
        assert not col("x").same_as(col("y"))

    def test_same_as_false_for_non_expressions(self) -> None:
        assert not col("x").same_as("x")
        assert not col("x").same_as(None)

    def test_planner_dedups_group_keys_with_same_as(self, db: Database) -> None:
        # GROUP BY expression matching a select item must reuse its alias,
        # which requires structural (not node-building) equality.
        db.create_table("t", {"g": ["a", "b", "a"], "x": [1, 2, 3]})
        result = db.sql("SELECT g AS grp, SUM(x) AS s FROM t GROUP BY g")
        assert result.column_names == ("grp", "s")
        assert sorted(result.to_dicts(), key=lambda r: r["grp"]) == [
            {"grp": "a", "s": 4},
            {"grp": "b", "s": 2},
        ]


# -- hash_join output-name dedup -------------------------------------------------------


class TestJoinNameCollision:
    def test_prefix_repeats_until_unique(self) -> None:
        left = Table.from_dict({"x": [1], "right_x": [2]})
        right = Table.from_dict({"x": [1], "y": [3]})
        out = ops.hash_join(left, right, "x", "x")
        assert out.column_names == ("x", "right_x", "right_right_x", "y")
        assert out.to_dicts() == [{"x": 1, "right_x": 2, "right_right_x": 1, "y": 3}]

    def test_double_collision(self) -> None:
        left = Table.from_dict({"k": [1], "right_k": [2], "right_right_k": [3]})
        right = Table.from_dict({"k": [1]})
        out = ops.hash_join(left, right, "k", "k")
        assert out.column_names == ("k", "right_k", "right_right_k", "right_right_right_k")

    def test_no_collision_keeps_plain_names(self) -> None:
        left = Table.from_dict({"k": [1], "v": [10]})
        right = Table.from_dict({"k": [1], "w": [20]})
        out = ops.hash_join(left, right, "k", "k")
        assert out.column_names == ("k", "v", "right_k", "w")


# -- division semantics ----------------------------------------------------------------


class TestDivisionByZero:
    def test_zero_divisor_yields_null_not_warning(self, db: Database) -> None:
        db.create_table("t", {"a": [10, 0, None, 7], "b": [0, 0, 0, 2]})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = db.sql("SELECT a / b AS q FROM t")
        assert result.column("q").to_list() == [None, None, None, 3.5]

    def test_zero_over_zero_is_null_not_nan(self, db: Database) -> None:
        db.create_table("t", {"a": [0], "b": [0]})
        assert db.sql("SELECT a / b AS q FROM t").column("q").to_list() == [None]

    def test_modulo_by_zero_is_null(self, db: Database) -> None:
        db.create_table("t", {"a": [10, 7], "b": [0, 2]})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = db.sql("SELECT a % b AS m FROM t")
        assert result.column("m").to_list() == [None, 1]

    def test_float_zero_divisor_is_null(self, db: Database) -> None:
        db.create_table("t", {"a": [1.5, 3.0], "b": [0.0, 1.5]})
        assert db.sql("SELECT a / b AS q FROM t").column("q").to_list() == [None, 2.0]


# -- join edge cases -------------------------------------------------------------------


class TestJoinEdgeCases:
    def test_left_join_against_empty_right_pads_with_nulls(self) -> None:
        left = Table.from_dict({"k": [1, 2], "v": [10, 20]})
        empty = Table.from_dict({"k": [], "w": []})
        out = ops.hash_join(left, empty, "k", "k", kind="left")
        assert out.num_rows == 2
        assert out.to_dicts() == [
            {"k": 1, "v": 10, "right_k": None, "w": None},
            {"k": 2, "v": 20, "right_k": None, "w": None},
        ]

    def test_inner_join_against_empty_right_is_empty(self) -> None:
        left = Table.from_dict({"k": [1, 2], "v": [10, 20]})
        empty = Table.from_dict({"k": [], "w": []})
        out = ops.hash_join(left, empty, "k", "k")
        assert out.num_rows == 0
        assert out.column_names == ("k", "v", "right_k", "w")

    def test_int_keys_match_equal_float_keys(self) -> None:
        left = Table.from_dict({"k": [1, 2], "v": [10, 20]})
        right = Table.from_dict({"k": [2.0, 3.0], "w": ["a", "b"]})
        out = ops.hash_join(left, right, "k", "k")
        assert out.to_dicts() == [{"k": 2, "v": 20, "right_k": 2.0, "w": "a"}]

    def test_string_keys_never_match_numeric_keys(self) -> None:
        left = Table.from_dict({"k": [1, 2], "v": [10, 20]})
        right = Table.from_dict({"k": ["1", "2"], "w": ["a", "b"]})
        assert ops.hash_join(left, right, "k", "k").num_rows == 0

    def test_null_keys_never_match(self) -> None:
        left = Table.from_dict({"k": [1, None, 3], "v": [1, 2, 3]})
        right = Table.from_dict({"k": [None, 3], "w": [9, 8]})
        inner = ops.hash_join(left, right, "k", "k")
        assert inner.to_dicts() == [{"k": 3, "v": 3, "right_k": 3, "w": 8}]

    def test_null_left_key_survives_left_join_unmatched(self) -> None:
        left = Table.from_dict({"k": [1, None, 3], "v": [1, 2, 3]})
        right = Table.from_dict({"k": [None, 3], "w": [9, 8]})
        out = ops.hash_join(left, right, "k", "k", kind="left")
        assert out.to_dicts() == [
            {"k": 1, "v": 1, "right_k": None, "w": None},
            {"k": None, "v": 2, "right_k": None, "w": None},
            {"k": 3, "v": 3, "right_k": 3, "w": 8},
        ]
