"""Tests for the interactive exploration shell (python -m repro)."""

import pytest

from repro.__main__ import Shell, main
from repro.engine import write_csv
from repro.workloads import sales_table


@pytest.fixture()
def shell():
    s = Shell()
    s.execute("\\demo 2000")
    return s


class TestShell:
    def test_demo_loads(self, shell):
        assert shell.session.db.has_table("sales")
        assert "sales: 2000 rows" in shell.execute("\\tables")

    def test_select_renders_table(self, shell):
        output = shell.execute("SELECT COUNT(*) AS n FROM sales")
        assert "2000" in output.replace(",", "")
        assert "(1 rows)" in output

    def test_dml(self, shell):
        shell.execute("CREATE TABLE notes (body TEXT)")
        assert "1 rows affected" in shell.execute("INSERT INTO notes VALUES ('hi')")
        assert "hi" in shell.execute("SELECT body FROM notes")

    def test_language_commands(self, shell):
        assert "over-represented" in shell.execute(
            "FACETS sales WHERE revenue > 300 RATIO 1.1"
        ) or "(no facets)" in shell.execute(
            "FACETS sales WHERE revenue > 300 RATIO 1.1"
        )
        assert "±" in shell.execute("APPROX AVG(revenue) FROM sales ROWS 400")

    def test_explain(self, shell):
        output = shell.execute("\\explain SELECT region FROM sales WHERE price > 10")
        assert "Scan(sales" in output

    def test_load_csv(self, shell, tmp_path):
        path = tmp_path / "extra.csv"
        write_csv(sales_table(50, seed=1), path)
        output = shell.execute(f"\\load {path} AS extra")
        assert "50 rows" in output
        assert shell.session.db.has_table("extra")

    def test_unknown_command(self, shell):
        assert "unrecognised" in shell.execute("WIBBLE 42")

    def test_errors_are_caught_in_run_loop(self, shell, capsys):
        import io

        shell.run(io.StringIO("SELECT zzz FROM missing\n"), interactive=False)
        captured = capsys.readouterr()
        assert "error:" in captured.out

    def test_help(self, shell):
        assert "EXPLORE" in shell.execute("\\help")

    def test_empty_line(self, shell):
        assert shell.execute("   ") == ""

    def test_quit_raises_eof(self, shell):
        with pytest.raises(EOFError):
            shell.execute("\\quit")


class TestShellResilience:
    def test_timeout_meta_command(self, shell):
        assert "off" in shell.execute("\\timeout")
        assert "250 ms" in shell.execute("\\timeout 250")
        assert "off" in shell.execute("\\timeout 0")

    def test_timeout_usage_on_garbage(self, shell):
        assert "usage" in shell.execute("\\timeout soon")
        assert "usage" in shell.execute("\\timeout -5")

    def test_interrupt_leaves_session_usable(self, shell, capsys, monkeypatch):
        """Ctrl-C mid-query: the loop prints (cancelled), the next query
        runs normally, and no spans dangle on the tracer stacks."""
        import io
        import json

        from repro.obs.tracing import get_tracer

        calls = {"n": 0}
        real_sql = shell.session.sql

        def interrupting_sql(query):
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyboardInterrupt
            return real_sql(query)

        monkeypatch.setattr(shell.session, "sql", interrupting_sql)
        shell.run(
            io.StringIO(
                "SELECT COUNT(*) AS n FROM sales\n"
                "SELECT COUNT(*) AS n FROM sales\n"
            ),
            interactive=False,
        )
        out = capsys.readouterr().out
        assert "(cancelled)" in out
        assert "(1 rows)" in out  # the follow-up query succeeded
        assert get_tracer().open_depth() == 0
        # the metrics snapshot is still well-formed after the interrupt
        json.loads(shell.execute("\\metrics"))


class TestMainEntry:
    def test_dash_c(self, capsys):
        code = main(["-c", "CREATE TABLE t (a INT)"])
        assert code == 0
        assert "0 rows affected" in capsys.readouterr().out

    def test_dash_c_missing_arg(self, capsys):
        assert main(["-c"]) == 2

    def test_dash_c_error(self, capsys):
        code = main(["-c", "SELECT a FROM nope"])
        assert code == 1
        assert "error" in capsys.readouterr().err
