"""Tests for scan-path acceleration (repro.engine.scanopt et al.).

Covers the three techniques of PR 5 — dictionary-encoded STRING columns,
zone-map data skipping, and the catalog-versioned plan cache — plus the
supporting plumbing: the Column fast-path constructor, the monotonic
catalog version, and statistics-staleness regressions.  The corpus
property test at the bottom replays the SQL differential-test corpus
with every accelerator on (under threads and fault injection) against
the all-off serial engine and requires bit-identical payloads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import resilience
from repro.engine import Database, Table
from repro.engine import parallel, scanopt, shards, zonemap
from repro.engine.column import Column
from repro.engine.expressions import col, lit, truth_mask
from repro.engine.planner import extract_probe
from repro.engine.statistics import ZoneMap
from repro.engine.types import DataType
from repro.errors import TypeMismatchError
from repro.indexing import CrackerIndex
from repro.obs.metrics import MetricsRegistry, set_registry
from tests.test_parallel import tables_bit_identical
from tests.test_sql_differential import random_query, random_table


@pytest.fixture(autouse=True)
def _reset_accel():
    """Pin the accelerators on for the test (regardless of REPRO_* env
    overrides), then restore the ambient accel/parallel/governor config."""
    accel = scanopt.get_config()
    par = parallel.get_config()
    gov = resilience.get_config()
    shard_index_saved = shards.get_config().shard_index
    saved = (
        accel.dict_encode, accel.zone_rows, accel.plan_cache, accel.plan_cache_size,
        par.threads, par.morsel_rows, par.min_parallel_rows,
        gov.faults, gov.fault_seed,
    )
    scanopt.configure(
        dict_encode=True,
        zone_rows=scanopt.DEFAULT_ZONE_ROWS,
        plan_cache=True,
        plan_cache_size=scanopt.DEFAULT_PLAN_CACHE_SIZE,
    )
    yield
    scanopt.configure(
        dict_encode=saved[0], zone_rows=saved[1],
        plan_cache=saved[2], plan_cache_size=saved[3],
    )
    parallel.configure(
        threads=saved[4], morsel_rows=saved[5], min_parallel_rows=saved[6]
    )
    resilience.configure(faults=saved[7] or "off", fault_seed=saved[8])
    shards.configure(shard_index=shard_index_saved)


@pytest.fixture()
def registry():
    """A fresh metrics registry installed for the test."""
    fresh = MetricsRegistry()
    old = set_registry(fresh)
    yield fresh
    set_registry(old)


def _strings(n: int, distinct: int = 7, null_every: int = 0) -> list:
    values = [f"v{i % distinct:03d}" for i in range(n)]
    if null_every:
        for i in range(0, n, null_every):
            values[i] = None
    return values


# -- dictionary encoding --------------------------------------------------------------


class TestDictionaryEncoding:
    def test_built_at_create_table(self):
        db = Database()
        db.create_table("t", {"s": _strings(50), "x": list(range(50))})
        column = db.get_table("t").column("s")
        encoded = column.dictionary()
        assert encoded is not None
        codes, values = encoded
        assert codes.dtype == np.int32
        assert list(values) == sorted(set(values))
        assert [values[c] for c in codes] == _strings(50)

    def test_nulls_get_sentinel_code(self):
        column = Column(_strings(20, null_every=5), dtype=DataType.STRING)
        column.encode_dictionary()
        codes, values = column.dictionary()
        assert (codes[::5] == -1).all()
        assert None not in list(values)
        assert column.null_count() == 4

    def test_disabled_by_config(self):
        scanopt.configure(dict_encode=False)
        db = Database()
        db.create_table("t", {"s": _strings(10)})
        assert db.get_table("t").column("s").dictionary() is None

    def test_codes_survive_take_filter_slice(self):
        column = Column(_strings(40, null_every=9), dtype=DataType.STRING)
        column.encode_dictionary()
        taken = column.take(np.array([3, 1, 4, 15, 9, 2]))
        filtered = column.filter(np.arange(40) % 2 == 0)
        sliced = column.slice(5, 20)
        for derived in (taken, filtered, sliced):
            encoded = derived.dictionary()
            assert encoded is not None
            codes, values = encoded
            decoded = [None if c < 0 else values[c] for c in codes]
            expected = [derived[i] for i in range(len(derived))]
            assert decoded == expected

    @pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">="])
    @pytest.mark.parametrize("needle", ["v002", "v0025", "aaaa", "zzzz"])
    def test_comparisons_bit_identical_on_off(self, op, needle):
        """Code-domain comparisons must equal string-domain ones for every
        operator, for present, absent, below-range and above-range needles."""
        table = Table.from_dict({"s": _strings(60, null_every=7)})
        table.column("s").encode_dictionary()
        predicate = {
            "=": col("s") == lit(needle),
            "<>": col("s") != lit(needle),
            "<": col("s") < lit(needle),
            "<=": col("s") <= lit(needle),
            ">": col("s") > lit(needle),
            ">=": col("s") >= lit(needle),
        }[op]
        scanopt.configure(dict_encode=True)
        fast = truth_mask(predicate, table)
        scanopt.configure(dict_encode=False)
        slow = truth_mask(predicate, table)
        assert np.array_equal(fast, slow)

    def test_dict_filter_metric_increments(self, registry):
        db = Database()
        db.create_table("t", {"s": _strings(100)})
        db.sql("SELECT COUNT(*) AS n FROM t WHERE s = 'v001'")
        assert registry.counter("scan.dict_filters").value >= 1

    def test_distinct_group_order_identical_on_off(self):
        rng = np.random.default_rng(3)
        values = [f"g{int(v):02d}" for v in rng.integers(0, 25, 300)]
        for i in range(0, 300, 31):
            values[i] = None
        queries = [
            "SELECT DISTINCT s FROM t ORDER BY s",
            "SELECT s, COUNT(*) AS n, SUM(x) AS sx FROM t GROUP BY s ORDER BY s",
            "SELECT x, s FROM t ORDER BY s, x LIMIT 40",
        ]
        results = {}
        for mode in (True, False):
            scanopt.configure(dict_encode=mode)
            db = Database()
            db.create_table("t", {"s": list(values), "x": list(range(300))})
            results[mode] = [db.sql(q) for q in queries]
        for fast, slow in zip(results[True], results[False]):
            tables_bit_identical(fast, slow)

    def test_pragma_reencodes_existing_tables(self):
        scanopt.configure(dict_encode=False)
        db = Database()
        db.create_table("t", {"s": _strings(10)})
        assert db.get_table("t").column("s").dictionary() is None
        db.execute("PRAGMA dict_encode=1")
        assert db.get_table("t").column("s").dictionary() is not None


# -- Column fast-path constructor -----------------------------------------------------


class TestColumnFastPath:
    def test_int_list_types_and_values(self):
        column = Column([1, 2, 3, -4])
        assert column.dtype is DataType.INT64
        assert column.data.dtype == np.int64
        assert column.validity is None
        assert list(column.data) == [1, 2, 3, -4]

    def test_float_list(self):
        column = Column([1.5, -2.25, 0.0])
        assert column.dtype is DataType.FLOAT64
        assert list(column.data) == [1.5, -2.25, 0.0]

    def test_bool_list(self):
        column = Column([True, False, True])
        assert column.dtype is DataType.BOOL
        assert list(column.data) == [True, False, True]

    def test_none_falls_back_to_slow_path(self):
        column = Column([1, None, 3])
        assert column.dtype is DataType.INT64
        assert column.validity is not None
        assert list(column.validity) == [True, False, True]

    def test_mixed_int_float_promotes(self):
        column = Column([1, 2.5])
        assert column.dtype is DataType.FLOAT64
        assert list(column.data) == [1.0, 2.5]

    def test_explicit_string_dtype_not_hijacked(self):
        column = Column(["1", "2"], dtype=DataType.STRING)
        assert column.dtype is DataType.STRING
        assert list(column.data) == ["1", "2"]


# -- zone maps ------------------------------------------------------------------------


def _clustered_table(n: int = 1000) -> Table:
    return Table.from_dict(
        {
            "x": list(range(n)),  # perfectly clustered
            "f": [float(i) / 2 for i in range(n)],
        }
    )


class TestZoneMapPruning:
    def _check(self, table: Table, predicate, zone_rows: int = 64):
        zones = ZoneMap.from_table(table, zone_rows)
        mask, pruned, passed, total = zonemap.pruned_truth_mask(
            predicate, table, zones
        )
        assert np.array_equal(mask, truth_mask(predicate, table))
        return pruned, passed, total

    def test_clustered_range_prunes_and_passes(self):
        table = _clustered_table()
        pruned, passed, total = self._check(
            table, (col("x") >= lit(128)) & (col("x") < lit(192))
        )
        assert total == 16
        assert pruned == 15  # all but the one zone containing [128, 192)
        assert passed == 1  # zones 2..2 lie fully inside the range

    def test_open_vs_closed_bounds_at_zone_edges(self):
        """Zone 1 of 64-row zones spans values [64, 127]; probes landing
        exactly on those endpoints must respect bound inclusivity."""
        table = _clustered_table(256)
        for predicate in (
            col("x") < lit(64),   # zone 1 FAILs (min 64 not < 64)
            col("x") <= lit(63),
            col("x") > lit(127),  # zone 1 FAILs (max 127 not > 127)
            col("x") >= lit(128),
        ):
            pruned, passed, total = self._check(table, predicate)
            assert pruned >= 1 and passed >= 1
        # flipping to inclusive keeps zone 1 alive: strictly fewer prunes
        lt_pruned, _, _ = self._check(table, col("x") < lit(64))
        le_pruned, _, _ = self._check(table, col("x") <= lit(64))
        assert le_pruned == lt_pruned - 1

    def test_all_null_zones_fail_range_probes(self):
        values = [None] * 64 + list(range(64, 128)) + [None] * 64
        table = Table.from_dict({"x": values})
        pruned, passed, total = self._check(table, col("x") >= lit(0))
        assert total == 3
        assert pruned == 2  # both all-NULL zones skipped
        assert passed == 1

    def test_nan_rows_block_pass_but_not_fail(self):
        values = [float(i) for i in range(128)]
        values[10] = float("nan")
        table = Table.from_dict({"f": values})
        # zone 0 contains a NaN: it may not PASS wholesale even though
        # its real min/max lie inside the range
        pruned, passed, total = self._check(table, col("f") >= lit(0.0))
        assert total == 2
        assert passed == 1  # only the NaN-free zone
        assert pruned == 0

    def test_all_nan_zone_fails(self):
        values = [float("nan")] * 64 + [1.0] * 64
        table = Table.from_dict({"f": values})
        pruned, passed, total = self._check(table, col("f") > lit(0.0))
        assert pruned == 1 and passed == 1

    def test_int64_bounds_stay_exact(self):
        """2**53 + 1 is not representable in float64; a float-cast zone
        bound would collapse it onto 2**53 and mis-prune."""
        big = 2**53
        table = Table.from_dict({"x": [big, big + 1] * 64})
        pruned, passed, total = self._check(
            table, col("x") > lit(big), zone_rows=16
        )
        assert pruned == 0
        mask = truth_mask(col("x") > lit(big), table)
        assert int(mask.sum()) == 64

    def test_unprovable_conjunct_downgrades_pass(self):
        table = _clustered_table(256)
        predicate = (col("x") >= lit(0)) & (col("f") == col("f"))
        pruned, passed, total = self._check(table, predicate)
        assert passed == 0  # the non-probe conjunct blocks wholesale accept
        assert pruned == 0

    def test_type_errors_surface_even_when_all_zones_pruned(self):
        table = _clustered_table(256)
        predicate = (col("x") > lit(10**9)) & (col("f") == lit("oops"))
        zones = ZoneMap.from_table(table, 64)
        with pytest.raises(TypeMismatchError):
            zonemap.pruned_truth_mask(predicate, table, zones)

    def test_string_probes_not_extracted_by_default(self):
        assert extract_probe(col("s") > lit("m")) is None
        probe = extract_probe(col("s") > lit("m"), allow_strings=True)
        assert probe is not None and probe.low == "m"

    def test_scan_uses_zones_and_counts_metric(self, registry):
        scanopt.configure(zone_rows=64)
        # under env-driven auto-sharding the shard-key cracker index
        # would answer this scan and the zone map (the thing under
        # test) would legitimately never be consulted
        shards.configure(shard_index=False)
        db = Database()
        db.create_table("t", _clustered_table(1000))
        result = db.sql("SELECT COUNT(*) AS n FROM t WHERE x >= 900")
        assert result.column("n")[0] == 100
        assert registry.counter("scan.zones_pruned").value >= 10

    def test_explain_analyze_annotates_zones(self):
        scanopt.configure(zone_rows=64)
        shards.configure(shard_index=False)  # keep the scan on the zone-map path
        db = Database()
        db.create_table("t", _clustered_table(1000))
        report = db.explain_analyze("SELECT * FROM t WHERE x < 10")
        assert "pruned" in report.render()

    def test_zone_rows_zero_disables(self, registry):
        scanopt.configure(zone_rows=0)
        db = Database()
        db.create_table("t", _clustered_table(1000))
        db.sql("SELECT COUNT(*) AS n FROM t WHERE x >= 900")
        assert registry.counter("scan.zones_pruned").value == 0

    def test_index_probe_path_skips_zone_maps(self, registry):
        """A scan answered through a registered cracker index re-orders
        rows; zone maps must stay out of the way (no double filtering)."""
        scanopt.configure(zone_rows=64)
        n = 1000
        rng = np.random.default_rng(7)
        values = rng.integers(0, 10_000, n)
        plain = Database()
        plain.create_table("t", {"x": values.tolist(), "id": list(range(n))})
        indexed = Database()
        indexed.create_table("t", {"x": values.tolist(), "id": list(range(n))})
        indexed.register_index("t", "x", CrackerIndex(values.astype(np.float64)))
        sql = "SELECT id, x FROM t WHERE x >= 2000 AND x < 2500 ORDER BY id"
        assert "index: x in" in indexed.explain(sql)
        before = registry.counter("scan.zones_pruned").value
        via_index = indexed.sql(sql)
        assert registry.counter("scan.zones_pruned").value == before
        tables_bit_identical(via_index, plain.sql(sql))


# -- plan cache & catalog versioning --------------------------------------------------


class TestPlanCache:
    def test_repeat_query_hits(self, registry):
        db = Database()
        db.create_table("t", {"x": [1, 2, 3]})
        sql = "SELECT x FROM t WHERE x > 1"
        first = db.plan(sql)
        second = db.plan(sql)
        assert first is second
        assert registry.counter("plan_cache.hits").value == 1
        assert registry.counter("plan_cache.misses").value == 1

    def test_disabled_by_config(self, registry):
        scanopt.configure(plan_cache=False)
        db = Database()
        db.create_table("t", {"x": [1, 2, 3]})
        sql = "SELECT x FROM t"
        assert db.plan(sql) is not db.plan(sql)
        assert registry.counter("plan_cache.hits").value == 0

    @pytest.mark.parametrize(
        "ddl",
        [
            lambda db: db.create_table("u", {"y": [1]}),
            lambda db: db.drop_table("t"),
            lambda db: db.replace_table("t", Table.from_dict({"x": [9]})),
            lambda db: db.register_index(
                "t", "x", CrackerIndex(np.array([1.0, 2.0, 3.0]))
            ),
        ],
    )
    def test_invalidated_by_catalog_changes(self, ddl):
        db = Database()
        db.create_table("t", {"x": [1, 2, 3]})
        sql = "SELECT COUNT(*) AS n FROM t"
        cached = db.plan(sql)
        version = db.catalog_version
        ddl(db)
        assert db.catalog_version > version  # monotonic bump
        if db.has_table("t"):
            assert db.plan(sql) is not cached

    def test_survives_delta_append(self):
        # an INSERT is not a structural change: it appends to the delta
        # store (or merges it, with REPRO_DELTA_ROWS=0/1), and the cached
        # plan keeps describing the table correctly either way
        db = Database()
        db.create_table("t", {"x": [1, 2, 3]})
        sql = "SELECT COUNT(*) AS n FROM t"
        cached = db.plan(sql)
        version = db.catalog_version
        db.execute("INSERT INTO t (x) VALUES (4)")
        assert db.catalog_version == version
        assert db.plan(sql) is cached
        assert db.sql(sql).to_dicts() == [{"n": 4}]

    def test_unregister_index_invalidates(self):
        db = Database()
        db.create_table("t", {"x": [1.0, 2.0, 3.0]})
        db.register_index("t", "x", CrackerIndex(np.array([1.0, 2.0, 3.0])))
        sql = "SELECT x FROM t WHERE x > 1.5"
        cached = db.plan(sql)
        assert "index: x in" in cached.explain()
        db.unregister_index("t", "x")
        fresh = db.plan(sql)
        assert fresh is not cached
        assert "index: x in" not in fresh.explain()

    def test_lru_eviction(self, registry):
        scanopt.configure(plan_cache_size=2)
        db = Database()
        db.create_table("t", {"x": [1, 2, 3]})
        a, b, c = (f"SELECT x FROM t LIMIT {i}" for i in (1, 2, 3))
        plan_a = db.plan(a)
        db.plan(b)
        db.plan(c)  # evicts a (capacity 2)
        assert db.plan(c) is not None
        assert db.plan(a) is not plan_a  # re-planned after eviction
        assert registry.counter("plan_cache.misses").value == 4

    def test_explain_analyze_notes_hit(self):
        db = Database()
        db.create_table("t", {"x": [1, 2, 3]})
        sql = "SELECT x FROM t"
        db.sql(sql)
        report = db.explain_analyze(sql)
        assert "plan cache: hit" in report.render()


class TestStatisticsFreshness:
    def test_insert_reflected_immediately(self):
        db = Database()
        db.create_table("t", {"x": [1, 2, 3]})
        assert db.statistics("t").row_count == 3
        db.execute("INSERT INTO t (x) VALUES (4), (5)")
        assert db.statistics("t").row_count == 5
        assert db.statistics("t").column("x").max_value == 5

    def test_replace_refreshes_zone_map(self):
        scanopt.configure(zone_rows=4)
        db = Database()
        db.create_table("t", {"x": list(range(16))})
        old = db.zone_map("t")
        assert old.num_zones == 4
        db.replace_table("t", Table.from_dict({"x": list(range(100, 108))}))
        fresh = db.zone_map("t")
        assert fresh.num_zones == 2
        assert int(fresh.columns["x"].mins[0]) == 100

    def test_version_monotonic_across_ddl(self):
        db = Database()
        seen = [db.catalog_version]
        db.create_table("a", {"x": [1]})
        seen.append(db.catalog_version)
        db.create_table("b", {"x": [1]})
        seen.append(db.catalog_version)
        db.drop_table("a")
        seen.append(db.catalog_version)
        db.replace_table("b", Table.from_dict({"x": [2]}))
        seen.append(db.catalog_version)
        assert seen == sorted(set(seen))  # strictly increasing


# -- PRAGMA surface -------------------------------------------------------------------


class TestScanAccelPragmas:
    def test_roundtrip(self):
        db = Database()
        db.execute("PRAGMA zone_rows=128")
        assert scanopt.get_config().zone_rows == 128
        assert db.execute("PRAGMA zone_rows").column("value")[0] == 128
        db.execute("PRAGMA plan_cache=0")
        assert scanopt.get_config().plan_cache is False
        db.execute("PRAGMA plan_cache_size=8")
        assert scanopt.get_config().plan_cache_size == 8
        db.execute("PRAGMA dict_encode=0")
        assert scanopt.get_config().dict_encode is False

    def test_rejects_bad_values(self):
        db = Database()
        with pytest.raises(Exception):
            db.execute("PRAGMA zone_rows=-1")
        with pytest.raises(Exception):
            db.execute("PRAGMA plan_cache_size=0")


# -- corpus property test: accelerated == unaccelerated, bit for bit ------------------


@pytest.mark.parametrize("seed", range(12))
def test_corpus_bit_identity_under_threads_and_faults(seed: int) -> None:
    """Replay the differential-test corpus with dictionary encoding, zone
    maps (tiny zones) and the plan cache all on — executed on the morsel
    pool with worker-crash injection — against the all-off serial engine.
    Payloads must match byte for byte."""
    rng = np.random.default_rng(1000 + seed)
    table, rows = random_table(rng, n=int(rng.integers(20, 90)))
    queries = [random_query(rng) for _ in range(10)]

    def build_db() -> Database:
        db = Database()
        db.create_table(
            "t",
            Table.from_dict(
                {name: [r[name] for r in rows] for name in ("id", "a", "b", "s")}
            ),
        )
        return db

    try:
        scanopt.configure(dict_encode=False, zone_rows=0, plan_cache=False)
        parallel.configure(threads=0)
        resilience.configure(faults="off")
        baseline_db = build_db()
        baseline = [baseline_db.sql(sql) for sql in queries]

        scanopt.configure(dict_encode=True, zone_rows=8, plan_cache=True)
        parallel.configure(threads=4, morsel_rows=7, min_parallel_rows=1)
        resilience.configure(faults="worker_crash:0.1", fault_seed=seed)
        accel_db = build_db()
        # run each query twice so the second execution exercises the
        # plan-cache hit path under the same fault schedule
        accelerated = [accel_db.sql(sql) for sql in queries]
        repeated = [accel_db.sql(sql) for sql in queries]
    finally:
        parallel.configure(threads=0, morsel_rows=parallel.DEFAULT_MORSEL_ROWS)
        resilience.configure(faults="off")
        scanopt.configure(
            dict_encode=True, zone_rows=scanopt.DEFAULT_ZONE_ROWS, plan_cache=True
        )

    for sql, expected, got, again in zip(queries, baseline, accelerated, repeated):
        try:
            tables_bit_identical(got, expected)
            tables_bit_identical(again, expected)
        except AssertionError as exc:
            raise AssertionError(f"accelerated engine diverged on: {sql}") from exc
