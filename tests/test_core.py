"""Tests for the ExplorationSession facade, history, steering, taxonomy."""

import numpy as np
import pytest

from repro.core import (
    ExplorationSession,
    FacetSteering,
    QueryHistory,
    TAXONOMY,
    ZoomSteering,
    validate_coverage,
)
from repro.core.taxonomy import render_table
from repro.engine import Database, col
from repro.errors import CatalogError
from repro.workloads import sales_table


@pytest.fixture()
def session():
    s = ExplorationSession()
    s.load_table("sales", sales_table(5000, seed=0))
    return s


class TestHistory:
    def test_records_in_order(self):
        history = QueryHistory()
        history.record("q1", 10)
        history.record("q2", 0)
        assert history.queries() == ["q1", "q2"]
        assert history.last(1)[0].sql == "q2"

    def test_empty_result_fraction(self):
        history = QueryHistory()
        history.record("q1", 10)
        history.record("q2", 0)
        assert history.empty_result_fraction() == 0.5

    def test_column_touch_counts(self):
        history = QueryHistory()
        history.record("q1", 1, columns=frozenset({"a", "b"}))
        history.record("q2", 1, columns=frozenset({"a"}))
        assert history.column_touch_counts() == {"a": 2, "b": 1}


class TestSession:
    def test_sql_records_history(self, session):
        session.sql("SELECT region FROM sales WHERE revenue > 100")
        assert len(session.history) == 1
        entry = session.history.last(1)[0]
        assert "revenue" in entry.columns

    def test_cracking_index_autocreated(self, session):
        assert session.db.index_for("sales", "revenue") is None
        session.sql("SELECT region FROM sales WHERE revenue > 100")
        assert session.db.index_for("sales", "revenue") is not None

    def test_cracked_results_match_uncracked(self):
        plain = ExplorationSession(enable_cracking=False)
        cracked = ExplorationSession(enable_cracking=True)
        for s in (plain, cracked):
            s.load_table("sales", sales_table(3000, seed=1))
        q = "SELECT COUNT(*) AS n FROM sales WHERE revenue >= 50 AND revenue <= 500"
        assert plain.sql(q).to_dicts() == cracked.sql(q).to_dicts()

    def test_approx_requires_samples(self, session):
        with pytest.raises(CatalogError):
            session.approx("sales", "avg", "revenue")

    def test_approx_near_truth(self, session):
        session.build_samples("sales", uniform_fractions=(0.1,))
        answer = session.approx("sales", "avg", "revenue")
        truth = float(np.mean(session.db.get_table("sales").column("revenue").data))
        assert abs(answer.estimate.value - truth) / truth < 0.1

    def test_recommend_views(self, session):
        views = session.recommend_views(
            "sales", col("region") == "north", ["category"], ["revenue"], k=2
        )
        assert len(views) == 2

    def test_explore_by_example(self, session):
        table = session.db.get_table("sales")
        price = np.asarray(table.column("price").data)
        result = session.explore_by_example(
            "sales", ["price"], oracle=lambda i: int(20 <= price[i] <= 40),
            max_iterations=6,
        )
        assert result.samples_labeled > 0

    def test_steering_suggestions(self, session):
        session.sql("SELECT * FROM sales WHERE price > 50")
        suggestions = session.steer("sales", k=2)
        assert len(suggestions) == 2
        assert all("price" in s.sql for s in suggestions)

    def test_suggest_next_from_logs(self, session):
        logs = [
            ["SELECT * FROM sales WHERE price > 10", "SELECT region FROM sales WHERE price > 10"],
            ["SELECT * FROM sales WHERE price > 10", "SELECT region FROM sales WHERE price > 10"],
        ]
        session.observe_log_sessions(logs)
        session.sql("SELECT * FROM sales WHERE price > 10")
        suggestions = session.suggest_next(k=1)
        assert suggestions
        assert "region" in suggestions[0].query


class TestSteering:
    def test_zoom_targets_most_touched_column(self):
        db = Database()
        db.create_table("sales", sales_table(3000, seed=2))
        history = QueryHistory()
        history.record("q", 5, columns=frozenset({"quantity"}))
        history.record("q", 5, columns=frozenset({"quantity"}))
        suggestions = ZoomSteering(db, "sales").suggest(history, k=3)
        assert all("quantity" in s.sql for s in suggestions)

    def test_zoom_scores_sorted(self):
        db = Database()
        db.create_table("sales", sales_table(3000, seed=3))
        suggestions = ZoomSteering(db, "sales").suggest(QueryHistory(), k=5)
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)

    def test_facet_steering_produces_runnable_sql(self):
        db = Database()
        db.create_table("sales", sales_table(4000, seed=4))
        revenue = np.asarray(db.get_table("sales").column("revenue").data)
        threshold = float(np.quantile(revenue, 0.9))
        suggestions = FacetSteering(db, "sales").suggest(
            col("revenue") > threshold, k=2, min_ratio=1.1
        )
        for suggestion in suggestions:
            result = db.sql(suggestion.sql)
            assert result.num_rows > 0


class TestTaxonomy:
    def test_every_cluster_covered(self):
        report = validate_coverage()
        assert report.complete, f"missing: {report.missing}"
        assert report.clusters_covered == report.clusters_total == len(TAXONOMY)

    def test_three_layers_present(self):
        layers = {cluster.layer for cluster in TAXONOMY}
        assert layers == {"User Interaction", "Middleware", "Database Layer"}

    def test_paper_refs_are_valid_citation_numbers(self):
        for cluster in TAXONOMY:
            assert all(1 <= ref <= 68 for ref in cluster.paper_refs)

    def test_render_mentions_all_layers(self):
        text = render_table()
        for layer in ("User Interaction", "Middleware", "Database Layer"):
            assert layer in text
