"""Tests for the extension modules: ripple join, discovery-driven OLAP,
concurrent cracking, semantic range cache."""

import numpy as np
import pytest

from repro.engine import Table
from repro.errors import ApproximationError
from repro.explore import CubeExplorer, best_views_by_exceptions
from repro.indexing import ConcurrentCrackingSimulator
from repro.prefetch import SemanticRangeCache
from repro.sampling import RippleJoin
from repro.workloads import RangeQuery, random_range_queries, uniform_column


def true_join_count(left, right) -> int:
    from collections import Counter

    counts = Counter(right.tolist())
    return sum(counts[v] for v in left.tolist())


class TestRippleJoin:
    @pytest.fixture()
    def tables(self):
        rng = np.random.default_rng(0)
        left = rng.integers(0, 200, size=5_000)
        right = rng.integers(0, 200, size=4_000)
        return left, right

    def test_exhausted_estimate_is_exact(self, tables):
        left, right = tables
        join = RippleJoin(left, right, batch_size=1_000, seed=1)
        snapshot = None
        for snapshot in join.run():
            pass
        assert snapshot.estimate == pytest.approx(true_join_count(left, right))
        assert snapshot.half_width == 0.0

    def test_estimate_converges(self, tables):
        left, right = tables
        truth = true_join_count(left, right)
        join = RippleJoin(left, right, batch_size=250, seed=2)
        errors = []
        for snapshot in join.run():
            errors.append(abs(snapshot.estimate - truth) / truth)
        assert np.mean(errors[-3:]) < np.mean(errors[:3])
        assert errors[-1] < 0.02

    def test_interval_shrinks(self, tables):
        left, right = tables
        join = RippleJoin(left, right, batch_size=200, seed=3)
        first = join.step()
        for _ in range(8):
            later = join.step()
        assert later.half_width < first.half_width

    def test_run_until_budget(self, tables):
        left, right = tables
        join = RippleJoin(left, right, batch_size=100, seed=4)
        snapshot = join.run_until(max_rows_per_side=500)
        assert snapshot.rows_read_left <= 500

    def test_sum_aggregate(self, tables):
        left, right = tables
        rng = np.random.default_rng(5)
        values = rng.uniform(0, 10, size=len(left))
        # truth: each left row contributes value * (matches in right)
        from collections import Counter

        counts = Counter(right.tolist())
        truth = float(sum(v * counts[k] for k, v in zip(left.tolist(), values)))
        join = RippleJoin(left, right, values=values, aggregate="sum", batch_size=1_000)
        snapshot = None
        for snapshot in join.run():
            pass
        assert snapshot.estimate == pytest.approx(truth, rel=1e-9)

    def test_invalid_configs(self, tables):
        left, right = tables
        with pytest.raises(ApproximationError):
            RippleJoin(left, right, aggregate="median")
        with pytest.raises(ApproximationError):
            RippleJoin(left, right, aggregate="sum")  # no values
        with pytest.raises(ApproximationError):
            RippleJoin(left, right).run_until()

    def test_coverage_of_intervals(self, tables):
        """CIs should cover the truth most of the time mid-stream."""
        left, right = tables
        truth = true_join_count(left, right)
        covered = 0
        trials = 20
        for seed in range(trials):
            join = RippleJoin(left, right, batch_size=400, seed=seed)
            join.step()
            snapshot = join.step()
            low = snapshot.estimate - snapshot.half_width
            high = snapshot.estimate + snapshot.half_width
            covered += low <= truth <= high
        assert covered / trials >= 0.8


class TestCubeExplorer:
    @pytest.fixture()
    def table(self):
        rng = np.random.default_rng(6)
        rows, columns, values = [], [], []
        for region in ("n", "s", "e", "w"):
            for product in ("a", "b", "c"):
                base = {"n": 10, "s": 20, "e": 30, "w": 40}[region] + {
                    "a": 0, "b": 5, "c": 10,
                }[product]
                for _ in range(50):
                    rows.append(region)
                    columns.append(product)
                    values.append(base + rng.normal(0, 0.5))
        # plant one exception: region 's', product 'c' is way off-model
        for _ in range(50):
            rows.append("s")
            columns.append("c")
            values.append(90.0 + rng.normal(0, 0.5))
        return Table.from_dict({"region": rows, "product": columns, "v": values})

    def test_exception_found(self, table):
        explorer = CubeExplorer(table, "region", "product", "v")
        exceptions = explorer.exceptions(threshold=2.0)
        assert exceptions
        top = exceptions[0]
        assert (top.row_value, top.column_value) == ("s", "c")

    def test_additive_cells_not_flagged(self):
        rng = np.random.default_rng(7)
        rows, cols, values = [], [], []
        for r in ("x", "y"):
            for c in ("p", "q"):
                base = {"x": 0, "y": 10}[r] + {"p": 0, "q": 5}[c]
                for _ in range(40):
                    rows.append(r)
                    cols.append(c)
                    values.append(base + rng.normal(0, 0.1))
        table = Table.from_dict({"r": rows, "c": cols, "v": values})
        explorer = CubeExplorer(table, "r", "c", "v")
        assert explorer.exceptions(threshold=2.5) == []

    def test_drill_path_scores_highlight_exception_row(self, table):
        explorer = CubeExplorer(table, "region", "product", "v")
        scores = explorer.drill_path_scores()
        assert max(scores, key=scores.get) == "s"

    def test_best_views_ranking(self, table):
        views = best_views_by_exceptions(table, ["region", "product"], "v", top_k=1)
        assert views[0][:2] == ("region", "product")


class TestConcurrentCracking:
    def test_all_queries_execute(self):
        values = uniform_column(20_000, 0, 1_000_000, seed=0)
        simulator = ConcurrentCrackingSimulator(values, num_clients=4, seed=1)
        queues = [
            random_range_queries(30, (0, 1_000_000), selectivity=0.01, seed=10 + c)
            for c in range(4)
        ]
        rounds = simulator.run(queues)
        assert sum(r.executed for r in rounds) == 4 * 30

    def test_results_stay_correct_under_concurrency(self):
        values = uniform_column(5_000, 0, 100_000, seed=2)
        simulator = ConcurrentCrackingSimulator(values, num_clients=3, seed=3)
        queues = [
            random_range_queries(10, (0, 100_000), selectivity=0.02, seed=20 + c)
            for c in range(3)
        ]
        simulator.run(queues)
        # after the concurrent run the index still answers correctly
        query = RangeQuery(10_000, 20_000)
        got = set(simulator.index.lookup_range(query.low, query.high, True, False).tolist())
        expected = {
            i for i, v in enumerate(values) if query.low <= v <= query.high
        }
        assert got == expected
        assert simulator.index.is_consistent()

    def test_contention_decreases_over_time(self):
        values = uniform_column(50_000, 0, 1_000_000, seed=4)
        simulator = ConcurrentCrackingSimulator(values, num_clients=8, seed=5)
        queues = [
            random_range_queries(40, (0, 1_000_000), selectivity=0.005, seed=30 + c)
            for c in range(8)
        ]
        simulator.run(queues)
        early = simulator.conflict_rate(0, 3)
        late = simulator.conflict_rate(-10, None)
        assert early > late, "contention must evaporate as pieces multiply"

    def test_existing_boundary_is_latch_free(self):
        values = uniform_column(1_000, 0, 10_000, seed=6)
        simulator = ConcurrentCrackingSimulator(values, num_clients=1)
        query = RangeQuery(1_000, 2_000)
        assert simulator.touched_pieces(query)  # first time: cracks needed
        simulator.index.lookup_range(query.low, query.high, True, False)
        assert simulator.touched_pieces(query) == set()  # now read-only


class TestSemanticRangeCache:
    @pytest.fixture()
    def setup(self):
        rng = np.random.default_rng(8)
        values = rng.uniform(0, 1000, size=20_000)
        fetches = {"count": 0, "rows": 0}

        def fetch(low, high):
            fetches["count"] += 1
            hits = np.flatnonzero((values >= low) & (values < high))
            fetches["rows"] += len(hits)
            return hits

        return values, fetch, fetches

    def test_correctness(self, setup):
        values, fetch, _ = setup
        cache = SemanticRangeCache(fetch)
        for low, high in [(0, 100), (50, 150), (140, 300), (0, 300)]:
            got = set(cache.query_filtered(low, high, values).tolist())
            expected = set(np.flatnonzero((values >= low) & (values < high)).tolist())
            assert got == expected

    def test_subsumed_query_fetches_nothing(self, setup):
        values, fetch, fetches = setup
        cache = SemanticRangeCache(fetch)
        cache.query(0, 500)
        before = fetches["rows"]
        cache.query(100, 400)
        assert fetches["rows"] == before

    def test_partial_overlap_fetches_only_gap(self, setup):
        values, fetch, fetches = setup
        cache = SemanticRangeCache(fetch)
        cache.query(0, 500)
        before = fetches["rows"]
        cache.query(400, 600)
        gap_rows = int(((values >= 500) & (values < 600)).sum())
        assert fetches["rows"] - before == gap_rows

    def test_intervals_coalesce(self, setup):
        values, fetch, _ = setup
        cache = SemanticRangeCache(fetch)
        cache.query(0, 100)
        cache.query(200, 300)
        assert len(cache.coverage()) == 2
        cache.query(50, 250)  # bridges the gap
        assert len(cache.coverage()) == 1

    def test_stats_track_cache_fraction(self, setup):
        values, fetch, _ = setup
        cache = SemanticRangeCache(fetch)
        cache.query(0, 500)
        cache.query(0, 500)
        assert cache.stats.cache_fraction > 0.4

    def test_empty_range(self, setup):
        _, fetch, fetches = setup
        cache = SemanticRangeCache(fetch)
        assert len(cache.query(10, 10)) == 0
        assert fetches["count"] == 0
