"""Tests for adaptive loading (NoDB / invisible loading)."""

import numpy as np
import pytest

from repro.engine import Database, Table, write_csv
from repro.errors import LoadingError
from repro.loading import InvisibleLoader, RawTable, full_load


@pytest.fixture()
def csv_path(tmp_path):
    table = Table.from_dict(
        {
            "a": list(range(100)),
            "b": [i * 1.5 for i in range(100)],
            "c": [f"name_{i % 7}" for i in range(100)],
            "d": [i % 2 == 0 for i in range(100)],
        }
    )
    path = tmp_path / "data.csv"
    write_csv(table, path)
    return path


class TestRawTable:
    def test_header_and_rows(self, csv_path):
        raw = RawTable(csv_path)
        assert raw.column_names == ["a", "b", "c", "d"]
        assert raw.num_rows == 100

    def test_fetch_single_column(self, csv_path):
        raw = RawTable(csv_path)
        column = raw.fetch_column("b")
        assert column.to_list()[:3] == [0.0, 1.5, 3.0]

    def test_type_inference(self, csv_path):
        raw = RawTable(csv_path)
        assert raw.fetch_column("a").dtype.name == "INT64"
        assert raw.fetch_column("c").dtype.name == "STRING"
        assert raw.fetch_column("d").dtype.name == "BOOL"

    def test_parsing_is_lazy_and_cached(self, csv_path):
        raw = RawTable(csv_path)
        raw.fetch_column("a")
        first = raw.fields_parsed
        assert first == 100  # only column a parsed
        raw.fetch_column("a")
        assert raw.fields_parsed == first  # cache hit

    def test_positional_map_reuses_tokenization(self, csv_path):
        raw = RawTable(csv_path)
        raw.fetch_column("b")  # tokenizes fields 0..1 (+1 lookahead)
        tokens_after_b = raw.fields_tokenized
        raw.fetch_column("a")  # already tokenized
        assert raw.fields_tokenized == tokens_after_b

    def test_later_column_resumes_tokenization(self, csv_path):
        raw = RawTable(csv_path)
        raw.fetch_column("a")
        first = raw.fields_tokenized
        raw.fetch_column("c")
        assert raw.fields_tokenized > first

    def test_full_table_matches_eager_load(self, csv_path):
        raw = RawTable(csv_path)
        table = raw.to_table()
        db = Database()
        loaded, _ = full_load(db, "t", csv_path)
        assert table == loaded

    def test_missing_column_raises(self, csv_path):
        raw = RawTable(csv_path)
        with pytest.raises(LoadingError):
            raw.fetch_column("nope")

    def test_sql_over_parses_only_needed(self, csv_path):
        db = Database()
        raw = RawTable(csv_path)
        result = raw.sql_over(db, "t", "SELECT a FROM t WHERE a < 10")
        assert result.num_rows == 10
        assert raw.columns_parsed == ["a"]


class TestInvisibleLoading:
    def test_progress_grows_with_queries(self, csv_path):
        db = Database()
        loader = InvisibleLoader(db, "t", csv_path)
        loader.query("SELECT a FROM t WHERE a < 5")
        assert loader.progress().columns_loaded == 1
        loader.query("SELECT b FROM t WHERE b > 3")
        assert loader.progress().columns_loaded == 2
        loader.query("SELECT * FROM t LIMIT 1")
        assert loader.progress().fraction_loaded == 1.0

    def test_repeat_queries_get_cheaper(self, csv_path):
        db = Database()
        loader = InvisibleLoader(db, "t", csv_path)
        loader.query("SELECT a FROM t WHERE a < 5")
        loader.query("SELECT a FROM t WHERE a < 50")
        assert loader.query_costs[1] < loader.query_costs[0]

    def test_results_match_full_load(self, csv_path):
        db1, db2 = Database(), Database()
        loader = InvisibleLoader(db1, "t", csv_path)
        full_load(db2, "t", csv_path)
        q = "SELECT c, COUNT(*) AS n FROM t WHERE a >= 10 GROUP BY c ORDER BY c"
        assert loader.query(q).to_dicts() == db2.sql(q).to_dicts()

    def test_cumulative_cost_below_full_load_for_narrow_workload(self, csv_path):
        db1, db2 = Database(), Database()
        loader = InvisibleLoader(db1, "t", csv_path)
        for low in range(0, 50, 10):
            loader.query(f"SELECT a FROM t WHERE a >= {low}")
        _, full_cost = full_load(db2, "t", csv_path)
        assert sum(loader.query_costs) < full_cost


def test_raw_table_handles_quoted_commas(tmp_path):
    path = tmp_path / "quoted.csv"
    path.write_text('a,s,b\n1,"hello, world",10\n2,plain,20\n')
    raw = RawTable(path)
    assert raw.fetch_column("s").to_list() == ["hello, world", "plain"]
    assert raw.fetch_column("b").to_list() == [10, 20]


class TestSpeculativeLoading:
    def test_hinted_columns_preloaded(self, csv_path):
        from repro.loading import SpeculativeLoader

        db = Database()
        loader = SpeculativeLoader(
            db, "t", csv_path, speculation_budget=1, workload_hint=["b"]
        )
        loader.query("SELECT a FROM t WHERE a < 10")  # speculates on b
        assert "b" in loader.raw.columns_parsed
        cost = loader.foreground_costs
        loader.query("SELECT b FROM t WHERE b > 3")  # should be a hit
        assert loader.speculative_hits == 1
        assert loader.foreground_costs[-1] < cost[0] / 5

    def test_background_work_accounted(self, csv_path):
        from repro.loading import SpeculativeLoader

        db = Database()
        loader = SpeculativeLoader(db, "t", csv_path, speculation_budget=2)
        loader.query("SELECT c FROM t")
        assert loader.background_cost > 0
        assert loader.fraction_loaded > 0.5

    def test_tokenisation_free_columns_first(self, csv_path):
        from repro.loading import SpeculativeLoader

        db = Database()
        loader = SpeculativeLoader(db, "t", csv_path, speculation_budget=1)
        loader.query("SELECT c FROM t")  # tokenises fields 0..2
        # speculation should have picked a or b (already tokenised), not d
        speculated = set(loader.raw.columns_parsed) - {"c"}
        assert speculated <= {"a", "b"}

    def test_results_identical_to_plain_loader(self, csv_path):
        from repro.loading import SpeculativeLoader

        db1, db2 = Database(), Database()
        speculative = SpeculativeLoader(db1, "t", csv_path, speculation_budget=2)
        plain = InvisibleLoader(db2, "t", csv_path)
        q = "SELECT c, COUNT(*) AS n FROM t WHERE a >= 50 GROUP BY c ORDER BY c"
        assert speculative.query(q).to_dicts() == plain.query(q).to_dicts()

    def test_no_speculation_budget_means_plain_nodb(self, csv_path):
        from repro.loading import SpeculativeLoader

        db = Database()
        loader = SpeculativeLoader(db, "t", csv_path, speculation_budget=0)
        loader.query("SELECT a FROM t")
        assert loader.background_cost == 0
        assert loader.raw.columns_parsed == ["a"]
