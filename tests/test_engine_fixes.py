"""Regression tests for sort/limit/distinct correctness fixes.

Covers the three bugs fixed alongside the observability PR: NULL
ordering no longer collides with real ``-inf`` / empty-string payloads,
negative LIMIT clamps to zero rows, and DISTINCT dedupes NaN and NULL
rows with defined semantics.
"""

import math

import numpy as np
import pytest

from repro.engine import operators as ops
from repro.engine.catalog import Database
from repro.engine.table import Table
from repro.errors import ParseError


@pytest.fixture()
def db() -> Database:
    return Database()


# -- NULL vs sentinel ordering ---------------------------------------------------------


class TestSortNullOrdering:
    def test_null_sorts_before_real_negative_infinity_asc(self, db: Database) -> None:
        db.create_table("t", {"x": [1.0, -math.inf, None, 0.0]})
        result = db.sql("SELECT x FROM t ORDER BY x ASC")
        assert result.column("x").to_list() == [None, -math.inf, 0.0, 1.0]

    def test_real_negative_infinity_sorts_before_null_desc(self, db: Database) -> None:
        db.create_table("t", {"x": [1.0, -math.inf, None, 0.0]})
        result = db.sql("SELECT x FROM t ORDER BY x DESC")
        assert result.column("x").to_list() == [1.0, 0.0, -math.inf, None]

    def test_null_sorts_before_real_empty_string_asc(self, db: Database) -> None:
        db.create_table("t", {"s": ["b", "", None, "a"]})
        result = db.sql("SELECT s FROM t ORDER BY s ASC")
        assert result.column("s").to_list() == [None, "", "a", "b"]

    def test_empty_string_sorts_before_null_desc(self, db: Database) -> None:
        db.create_table("t", {"s": ["b", "", None, "a"]})
        result = db.sql("SELECT s FROM t ORDER BY s DESC")
        assert result.column("s").to_list() == ["b", "a", "", None]

    def test_nulls_keep_relative_order_under_multi_key_sort(self, db: Database) -> None:
        # secondary key orders the rows; primary key is NULL for all of
        # them, so the secondary order must survive the primary pass
        db.create_table(
            "t", {"k": [None, None, None], "v": [3, 1, 2]}
        )
        result = db.sql("SELECT k, v FROM t ORDER BY k ASC, v ASC")
        assert result.column("v").to_list() == [1, 2, 3]

    def test_desc_is_stable_for_equal_keys(self, db: Database) -> None:
        db.create_table("t", {"k": [1, 1, 1], "v": [10, 20, 30]})
        result = db.sql("SELECT v FROM t ORDER BY k DESC")
        assert result.column("v").to_list() == [10, 20, 30]


# -- LIMIT clamping --------------------------------------------------------------------


class TestLimit:
    def _table(self) -> Table:
        return Table.from_dict({"x": [1, 2, 3, 4]})

    def test_negative_limit_returns_no_rows(self) -> None:
        assert ops.limit(self._table(), -1).num_rows == 0
        assert ops.limit(self._table(), -100).num_rows == 0

    def test_zero_limit_returns_no_rows(self) -> None:
        assert ops.limit(self._table(), 0).num_rows == 0

    def test_limit_zero_via_sql(self, db: Database) -> None:
        db.create_table("t", {"x": [1, 2, 3]})
        assert db.sql("SELECT x FROM t LIMIT 0").num_rows == 0

    def test_negative_limit_rejected_at_parse_time(self, db: Database) -> None:
        db.create_table("t", {"x": [1, 2, 3]})
        with pytest.raises(ParseError):
            db.sql("SELECT x FROM t LIMIT -3")

    def test_oversized_limit_returns_everything(self) -> None:
        assert ops.limit(self._table(), 100).num_rows == 4


# -- DISTINCT with NaN and NULL --------------------------------------------------------


class TestDistinct:
    def test_nan_rows_dedupe_to_one(self, db: Database) -> None:
        db.create_table("t", {"x": [float("nan"), float("nan"), 1.0, float("nan")]})
        result = db.sql("SELECT DISTINCT x FROM t")
        values = result.column("x").to_list()
        assert len(values) == 2
        assert sum(1 for v in values if isinstance(v, float) and math.isnan(v)) == 1

    def test_null_nan_and_real_values_are_mutually_distinct(self, db: Database) -> None:
        db.create_table("t", {"x": [None, float("nan"), 0.0, None, float("nan"), 0.0]})
        result = db.sql("SELECT DISTINCT x FROM t")
        assert result.num_rows == 3

    def test_first_occurrence_wins(self, db: Database) -> None:
        db.create_table("t", {"x": [2, 1, 2, 3, 1]})
        result = db.sql("SELECT DISTINCT x FROM t")
        assert result.column("x").to_list() == [2, 1, 3]

    def test_multi_column_keys(self, db: Database) -> None:
        db.create_table(
            "t",
            {
                "a": [1, 1, 1, 2, None, None],
                "b": ["x", "x", "y", "x", None, None],
            },
        )
        result = db.sql("SELECT DISTINCT a, b FROM t")
        assert result.num_rows == 4  # (1,x), (1,y), (2,x), (NULL,NULL)

    def test_null_string_distinct_from_empty_string(self) -> None:
        table = Table.from_dict({"s": [None, "", None, ""]})
        result = ops.distinct(table)
        assert result.column("s").to_list() == [None, ""]

    def test_distinct_matches_python_reference_on_clean_data(self) -> None:
        rng = np.random.default_rng(7)
        values = rng.integers(0, 5, size=200).tolist()
        table = Table.from_dict({"x": values})
        expected = list(dict.fromkeys(values))
        assert ops.distinct(table).column("x").to_list() == expected
