"""Interactive exploration of a data-series collection (iSAX, dbtouch,
gestures).

1. **iSAX index**: approximate then exact similarity search over
   thousands of series, touching a fraction of the data.
2. **dbtouch**: summary statistics that accumulate as a finger slides
   over a column — work proportional to the gesture, not the data.
3. **Gestural queries**: sort and group a table by swiping and pinching.

Run with:  python examples/timeseries_similarity.py
"""

from __future__ import annotations

import numpy as np

from repro.engine import Table
from repro.indexing import ISAXIndex
from repro.interface import DbTouch, GestureQuerySession, TouchPoint
from repro.workloads import random_walk_series


def similarity_search() -> None:
    print("1. iSAX similarity search over 5,000 random-walk series")
    series = random_walk_series(5_000, 256, seed=0)
    index = ISAXIndex(series, word_length=8, leaf_capacity=64)
    print(f"   index built: {index.num_leaves} leaves")

    rng = np.random.default_rng(1)
    target = int(rng.integers(0, len(series)))
    query = series[target] + rng.normal(0, 0.05, size=256)

    index.reset_counters()
    approx = index.approximate_search(query, k=3)
    print(f"   approximate (one leaf): best match {approx[0][0]} "
          f"at distance {approx[0][1]:.3f} "
          f"({index.distance_computations} distances computed)")

    index.reset_counters()
    exact = index.exact_search(query, k=3)
    print(f"   exact: best match {exact[0][0]} (hidden target was {target}) "
          f"using {index.distance_computations}/{len(series)} distances")
    for series_id, distance in exact:
        print(f"      #{series_id}: distance {distance:.3f}")


def touch_analytics() -> None:
    print("\n2. dbtouch: statistics under your finger")
    rng = np.random.default_rng(2)
    table = Table.from_dict({"signal": np.sort(rng.normal(100, 25, size=200_000))})
    touch = DbTouch(table, slice_rows=256)
    for stop in (0.1, 0.3, 0.6, 1.0):
        summary = touch.slide("signal", max(0.0, stop - 0.1), stop, steps=15)
        print(f"   slid to {stop:3.0%}: seen {summary.rows_seen:6d} rows "
              f"({summary.fraction_explored:5.1%} of data), "
              f"running mean {summary.mean:7.2f}, max {summary.maximum:7.2f}")
    print(f"   total rows processed: {touch.rows_touched} "
          f"(the table has {table.num_rows})")


def gesture_queries() -> None:
    print("\n3. GestureDB: querying without keyboards")
    table = Table.from_dict(
        {
            "city": ["Oslo", "Lima", "Pune", "Oslo", "Lima", "Oslo"],
            "temp": [3.0, 19.5, 28.1, 1.2, 21.0, -4.0],
        }
    )
    session = GestureQuerySession(table)
    # swipe right over the 'temp' column strip (x in the right half)
    swipe = [TouchPoint(0.6 + i * 0.03, 0.5, i * 0.02) for i in range(10)]
    print("   " + session.apply_trace(swipe))
    print("      ->", session.current.column("temp").to_list())
    # pinch over the 'city' column strip (two fingers converging, left half)
    pinch = [
        TouchPoint(0.05, 0.3, 0.0, finger=0),
        TouchPoint(0.45, 0.7, 0.0, finger=1),
        TouchPoint(0.2, 0.45, 0.2, finger=0),
        TouchPoint(0.3, 0.55, 0.2, finger=1),
    ]
    print("   " + session.apply_trace(pinch))
    print(session.current.pretty())


def main() -> None:
    similarity_search()
    touch_analytics()
    gesture_queries()


if __name__ == "__main__":
    main()
