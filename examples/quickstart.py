"""Quickstart: the repro data exploration engine in five minutes.

Covers the core loop the paper motivates: load data, query it through
SQL (adaptive indexes appear as a side effect), get approximate answers
instantly, and let the system recommend where to look next.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import col
from repro.core import ExplorationSession
from repro.workloads import sales_table


def main() -> None:
    # 1. an exploration session over a synthetic sales table -----------------
    session = ExplorationSession()
    session.load_table("sales", sales_table(50_000, seed=7))
    print("Loaded 'sales':", session.db.get_table("sales").schema)

    # 2. plain SQL — with adaptive indexing happening underneath --------------
    result = session.sql(
        "SELECT region, COUNT(*) AS orders, AVG(revenue) AS avg_revenue "
        "FROM sales WHERE price > 40 GROUP BY region ORDER BY avg_revenue DESC"
    )
    print("\nRevenue by region (price > 40):")
    print(result.pretty())
    index = session.db.index_for("sales", "price")
    print(
        f"\nA cracker index on sales.price appeared automatically "
        f"({index.num_pieces} pieces after one query)."
    )

    # repeat queries keep refining it and get cheaper
    for low in (10, 30, 50, 70):
        session.sql(f"SELECT COUNT(*) AS n FROM sales WHERE price > {low}")
    print(f"After four more queries: {index.num_pieces} pieces.")

    # 3. approximate answers with error bars ---------------------------------
    session.build_samples("sales", uniform_fractions=(0.01, 0.1), stratified_on=[["region"]])
    answer = session.approx("sales", "avg", "revenue", time_bound_rows=1_000)
    estimate = answer.estimate
    print(
        f"\nApprox AVG(revenue) from {answer.rows_scanned} rows "
        f"({answer.sample_used}): {estimate.value:.2f} ± {estimate.half_width:.2f}"
    )
    truth = float(np.mean(session.db.get_table("sales").column("revenue").data))
    print(f"True AVG(revenue): {truth:.2f}  (inside the interval: {estimate.contains(truth)})")

    # 4. which charts are worth looking at? (SeeDB) ---------------------------
    views = session.recommend_views(
        "sales",
        target=col("region") == "north",
        dimensions=["category"],
        measures=["price", "revenue", "quantity"],
        k=3,
    )
    print("\nMost deviating views for the 'north' region (SeeDB):")
    for view in views:
        print(f"  {view.spec.describe():45s} utility={view.utility:.3f}")

    # 5. where to go next? (steering) -----------------------------------------
    print("\nDrill-down suggestions (query steering):")
    for suggestion in session.steer("sales", k=3):
        print(f"  {suggestion.sql}")
        print(f"      because: {suggestion.reason}")


if __name__ == "__main__":
    main()
