"""A business-analytics session: dashboards, approximation, diversity.

The middleware and interaction layers working together on a sales table:

1. **VizDeck** assembles a dashboard by ranking candidate charts.
2. **Declarative viz specs** compile to engine SQL (and flag M4 for
   long line charts).
3. **Online aggregation** streams a big AVG with a shrinking interval.
4. **BlinkDB-style sampling** answers grouped aggregates from stratified
   samples with per-group error bars.
5. **Diversified top-k** picks products that are relevant *and* spread
   across the catalog.
6. **Facet recommendations** surface what is special about a result.

Run with:  python examples/sales_dashboard.py
"""

from __future__ import annotations

import numpy as np

from repro.engine import Database, col
from repro.explore import FacetRecommender, VizDeck, mmr_diversify
from repro.sampling import ApproximateQueryEngine, OnlineAggregator, SampleCatalog
from repro.viz import VizSpec, compile_spec
from repro.workloads import sales_table


def main() -> None:
    table = sales_table(120_000, group_skew=1.4, seed=11)
    db = Database()
    db.create_table("sales", table)
    print(f"sales: {table.num_rows} rows, columns {table.column_names}\n")

    # 1. self-organising dashboard -------------------------------------------
    print("1. VizDeck's top charts for this table:")
    for candidate in VizDeck(table).rank(k=4):
        print(f"   {candidate.describe():30s} score={candidate.score:.2f}")

    # 2. declarative specs → SQL ----------------------------------------------
    print("\n2. A declarative bar-chart spec compiled to SQL:")
    spec = VizSpec(
        mark="bar", table="sales", x="region", y="revenue",
        aggregate="sum", descending=True, limit=5,
    )
    compiled = compile_spec(spec)
    print(f"   {compiled.sql}")
    print(db.sql(compiled.sql).pretty())

    # 3. online aggregation ----------------------------------------------------
    print("\n3. Online AVG(revenue): watch the interval shrink")
    revenue = np.asarray(table.column("revenue").data, dtype=float)
    aggregator = OnlineAggregator(revenue, "avg", batch_size=3_000, seed=1)
    for i, snapshot in enumerate(aggregator.run()):
        if i % 8 == 0:
            estimate = snapshot.estimate
            print(f"   {snapshot.progress:5.0%} of data: "
                  f"{estimate.value:8.2f} ± {estimate.half_width:.2f}")
        if snapshot.estimate.relative_error < 0.005:
            print(f"   stopping early at {snapshot.progress:.0%} — good enough.")
            break

    # 4. grouped approximation with stratified samples ---------------------------
    print("\n4. AVG(revenue) per region from a stratified sample:")
    catalog = SampleCatalog(table)
    catalog.add_uniform(0.02, seed=2)
    catalog.add_stratified(["region"], cap=600, seed=3)
    engine = ApproximateQueryEngine(table, catalog)
    answer = engine.query("avg", "revenue", group_by=["region"])
    for (region,), estimate in sorted(answer.group_estimates.items()):
        print(f"   {region:8s} {estimate.value:8.2f} ± {estimate.half_width:6.2f} "
              f"(from {estimate.sample_size} sampled rows)")

    # 5. diversified top-k products ------------------------------------------------
    print("\n5. Top products, diversified across the (price, quantity) space:")
    by_product = db.sql(
        "SELECT product_id, SUM(revenue) AS total, AVG(price) AS price, "
        "AVG(quantity) AS quantity FROM sales GROUP BY product_id"
    )
    points = np.column_stack(
        [
            np.asarray(by_product.column("price").data, dtype=float),
            np.asarray(by_product.column("quantity").data, dtype=float),
        ]
    )
    relevance = np.asarray(by_product.column("total").data, dtype=float)
    chosen = mmr_diversify(points, relevance, k=5, trade_off=0.6)
    for i in chosen:
        row = by_product.row(int(i))
        print(f"   product {row[0]:4d}: total={row[1]:12.2f} price={row[2]:7.2f} qty={row[3]:4.1f}")

    # 6. what is special about the big orders? ---------------------------------------
    print("\n6. Facets over-represented among the top-decile orders:")
    threshold = float(np.quantile(revenue, 0.9))
    facets = FacetRecommender(table).interesting_facets(
        col("revenue") > threshold, min_ratio=1.2
    )
    for facet in facets[:4]:
        print(f"   {facet.attribute}={facet.value!r} is "
              f"{facet.relevance_ratio:.1f}x more common than usual")


if __name__ == "__main__":
    main()
