"""The paper's future-work vision, §2.4: a declarative exploration language.

One conversation with the data, each line a single declarative command:
dashboards, steering, facets, view recommendation, segmentation,
approximation, diversification — plus the assisted-formulation loop
(join inference) and an online join estimate on top.

Run with:  python examples/exploration_language.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ExplorationLanguage, ExplorationSession
from repro.explore import JoinInferencer
from repro.sampling import RippleJoin
from repro.workloads import sales_table


def language_walkthrough(session: ExplorationSession) -> None:
    language = ExplorationLanguage(session)
    commands = [
        "EXPLORE sales",
        "STEER sales TOP 2",
        "RECOMMEND VIEWS sales FOR region = 'north' TOP 2",
        "SEGMENT sales.price INTO 3",
        "APPROX AVG(revenue) FROM sales ROWS 1000",
        "FACETS sales WHERE revenue > 500 RATIO 1.2",
        "DIVERSIFY sales BY price, quantity RELEVANCE revenue TOP 3",
    ]
    for command in commands:
        print(f">>> {command}")
        print(language.run(command).text)
        print()


def join_without_writing_it(session: ExplorationSession) -> None:
    print(">>> (the user labels candidate pairs instead of writing a join)")
    rng = np.random.default_rng(1)
    db = session.db
    db.create_table(
        "stores",
        {
            "store_id": list(range(50)),
            "manager_id": rng.integers(0, 50, size=50).tolist(),  # decoy
            "city": [f"city_{i % 9}" for i in range(50)],
        },
    )
    # give sales a store reference so the intended join exists among the
    # type-compatible candidate column pairs
    from repro.engine.column import Column

    sales = db.get_table("sales")
    stores = db.get_table("stores")
    store_ref = np.asarray(sales.column("product_id").data) % 50
    db.replace_table("sales", sales.with_column("store_ref", Column(store_ref)))
    sales = db.get_table("sales")

    def oracle(sale_row: int, store_row: int) -> bool:
        """The simulated user recognises pairs of the intended join."""
        return sales.column("store_ref")[sale_row] == stores.column("store_id")[store_row]

    inferencer = JoinInferencer(db, "sales", "stores", oracle, seed=2)
    print(f"    candidate equi-joins: {len(inferencer.candidates)}")
    result = inferencer.run(max_labels=30)
    print(f"    resolved after {result.labels_used} labels: "
          f"{result.join.to_sql('sales', 'stores')}")
    sql = (
        inferencer.inferred_sql(result, projection="city, COUNT(*) AS n")
        + " GROUP BY city ORDER BY n DESC LIMIT 3"
    )
    print(f"    running: {sql}")
    print(session.db.sql(sql).pretty())
    print()


def online_join_estimate(session: ExplorationSession) -> None:
    print(">>> (ripple join: the join count before the join finishes)")
    sales = session.db.get_table("sales")
    stores = session.db.get_table("stores")
    left = np.asarray(sales.column("store_ref").data)
    right = np.asarray(stores.column("store_id").data)
    join = RippleJoin(left, right, batch_size=len(left) // 40, seed=3)
    for i, snapshot in enumerate(join.run()):
        if i % 10 == 0 and snapshot.half_width > 0:
            print(f"    after {snapshot.rows_read_left + snapshot.rows_read_right} rows: "
                  f"|sales ⋈ stores| ≈ {snapshot.estimate:,.0f} ± {snapshot.half_width:,.0f}")
        if snapshot.relative_error < 0.02 and snapshot.half_width > 0:
            print(f"    tight enough — stopping at "
                  f"{snapshot.rows_read_left + snapshot.rows_read_right} rows read.")
            break


def main() -> None:
    session = ExplorationSession()
    session.load_table("sales", sales_table(30_000, seed=0))
    language_walkthrough(session)
    join_without_writing_it(session)
    online_join_estimate(session)


if __name__ == "__main__":
    main()
