"""Database-layer adaptivity on raw data: NoDB, adaptive storage, synopses.

An analyst receives a large CSV and wants answers *now*:

1. **Raw querying (NoDB)** answers SQL directly against the file,
   parsing only the touched columns; "invisible loading" keeps the work.
2. **Adaptive storage** watches the session and reorganises the table
   layout when the workload warrants it.
3. **Synopses** (histogram + sketches) answer selectivity/frequency/
   distinct-count questions from kilobytes of state.

Run with:  python examples/raw_file_analysis.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.engine import Database, write_csv
from repro.loading import InvisibleLoader, full_load
from repro.storage import AdaptiveStore, QueryProfile
from repro.synopses import CountMinSketch, EquiDepthHistogram, HyperLogLog
from repro.workloads import sales_table


def raw_querying(path: Path) -> None:
    print("1. Querying the raw file (NoDB / invisible loading)")
    db = Database()
    loader = InvisibleLoader(db, "sales", path)
    queries = [
        "SELECT AVG(price) AS p FROM sales WHERE price > 20",
        "SELECT AVG(price) AS p FROM sales WHERE price > 60",
        "SELECT region, COUNT(*) AS n FROM sales WHERE price > 60 GROUP BY region",
    ]
    for query in queries:
        result = loader.query(query)
        progress = loader.progress()
        print(f"   ran: {query}")
        print(f"        cost={loader.query_costs[-1]:>8} fields, "
              f"loaded {progress.columns_loaded}/{progress.columns_total} columns")
        if result.num_rows <= 5:
            for row in result.to_dicts():
                print(f"        {row}")
    _, full_cost = full_load(Database(), "sales", path)
    print(f"   a traditional full load would have cost {full_cost} fields before query 1\n")


def adaptive_layout() -> None:
    print("2. Adaptive storage: the layout follows the workload")
    columns = ["region", "category", "product_id", "price", "quantity", "discount", "revenue"]
    store = AdaptiveStore(columns, num_rows=500_000, evaluation_interval=8, window=16)
    print(f"   initial layout: {store.layout.describe()}")
    # phase 1: narrow analytics
    for _ in range(30):
        store.execute(QueryProfile.make(["price"], ["revenue"], selectivity=0.02))
    print(f"   after 30 narrow scans: {store.layout.describe()}")
    # phase 2: wide exports
    for _ in range(30):
        store.execute(QueryProfile.make(["product_id"], columns, selectivity=0.8))
    print(f"   after 30 wide reads:   {store.layout.describe()}")
    for event in store.events:
        print(f"   switched at query {event.at_query}: "
              f"{event.old_layout} -> {event.new_layout}")
    print()


def synopsis_answers(path: Path) -> None:
    print("3. Synopses: instant answers from tiny summaries")
    db = Database()
    table, _ = full_load(db, "sales", path)
    price = np.asarray(table.column("price").data, dtype=float)
    products = table.column("product_id").to_list()

    histogram = EquiDepthHistogram(price, num_buckets=64)
    true_sel = float(((price >= 20) & (price <= 50)).mean())
    print(f"   selectivity(price in [20, 50]): "
          f"histogram={histogram.estimate_selectivity(20, 50):.3f} "
          f"truth={true_sel:.3f} ({histogram.size_bytes} bytes)")

    sketch = CountMinSketch(epsilon=0.001, delta=0.01)
    sketch.extend(products)
    top_product = max(set(products), key=products.count)
    print(f"   frequency(product {top_product}): "
          f"sketch={sketch.estimate(top_product)} truth={products.count(top_product)} "
          f"({sketch.size_bytes} bytes)")

    hll = HyperLogLog(precision=12)
    hll.extend(products)
    print(f"   distinct products: HLL={hll.estimate():.0f} "
          f"truth={len(set(products))} ({hll.size_bytes} bytes)")


def main() -> None:
    with tempfile.TemporaryDirectory() as directory:
        path = Path(directory) / "sales.csv"
        write_csv(sales_table(40_000, seed=21), path)
        print(f"Received raw file: {path.name} "
              f"({path.stat().st_size // 1024} KiB)\n")
        raw_querying(path)
        adaptive_layout()
        synopsis_answers(path)


if __name__ == "__main__":
    main()
