"""The paper's motivating scenario: an astronomer who doesn't know what
she's looking for.

A synthetic sky survey (a 2-D grid with a few bright hotspots) is
explored three ways:

1. **Semantic windows** find bright regions after inspecting a fraction
   of the sky (vs. the exhaustive scan).
2. **Explore-by-example (AIDE)** learns the analyst's interest region
   from a few dozen labelled objects and emits the SQL query she never
   knew how to write.
3. **Prefetched cube navigation** makes panning across the sky feel
   instant: a Markov model speculatively computes the next tiles.

Run with:  python examples/astronomy_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro.explore import AideExplorer, SemanticWindowExplorer
from repro.prefetch import CubeNavigator, MarkovPredictor, SpeculativeExecutor, TileCache
from repro.prefetch.cube import MoveBasedRegionPredictor
from repro.workloads import (
    CubeSessionGenerator,
    SessionConfig,
    generate_sessions,
    grid_table,
)


def find_bright_regions(sky) -> None:
    print("=" * 70)
    print("1. Semantic windows: 'show me 8x8 regions with high mean brightness'")
    explorer_online = SemanticWindowExplorer(sky, window_size=8, threshold=1.2)
    explorer_full = SemanticWindowExplorer(sky, window_size=8, threshold=1.2)
    online = explorer_online.find_online(k=3, num_probes=256, seed=1)
    explorer_full.find_exhaustive(k=3)
    print(f"   online search: {len(online)} regions after inspecting "
          f"{explorer_online.windows_inspected} / {explorer_online.num_windows} windows")
    print(f"   exhaustive   : inspected {explorer_full.windows_inspected} windows for the same answer")
    for window in online:
        print(f"   bright region at ({window.x}, {window.y}), mean brightness {window.average:.2f}")


def learn_interest_region(sky) -> None:
    print("=" * 70)
    print("2. Explore-by-example: label a few objects, get the query")
    xs = np.asarray(sky.column("x").data, dtype=float)
    ys = np.asarray(sky.column("y").data, dtype=float)
    values = np.asarray(sky.column("value").data, dtype=float)
    features = np.column_stack([xs, ys])
    # the astronomer is interested in the brightest area's neighbourhood
    peak = int(np.argmax(values))
    cx, cy = xs[peak], ys[peak]
    truth = (
        (np.abs(xs - cx) <= 12) & (np.abs(ys - cy) <= 12)
    ).astype(int)

    explorer = AideExplorer(
        features, oracle=lambda i: int(truth[i]), samples_per_round=25, seed=2
    )
    result = explorer.run(max_iterations=12, truth=truth)
    final_f1 = next((f for f in reversed(result.f1_history) if f > 0), 0.0)
    print(f"   labelled {result.samples_labeled} objects "
          f"(of {len(features)}), region F1 = {final_f1:.2f}")
    print(f"   discovered query: SELECT * FROM sky WHERE {result.predicate_sql(['x', 'y'])}")


def navigate_with_prefetching(sky) -> None:
    print("=" * 70)
    print("3. Navigating the sky cube with speculative prefetching")
    navigator = CubeNavigator(sky, "x", "y", "value", levels=4, base_tiles=4)

    model = MarkovPredictor(order=1)
    for session in generate_sessions(15, SessionConfig(length=60, persistence=0.85), seed=3):
        model.observe_sequence([s.move for s in session[1:]])
    predictor = MoveBasedRegionPredictor(navigator, model)

    for label, executor in (
        ("cache only     ", SpeculativeExecutor(navigator.compute_tile, TileCache(256), None, fanout=0)),
        ("with prefetching", SpeculativeExecutor(navigator.compute_tile, TileCache(256), predictor, fanout=3)),
    ):
        generator = CubeSessionGenerator(
            SessionConfig(length=100, grid_side=32, levels=4, persistence=0.85), seed=4
        )
        for step in generator.session():
            executor.request(step.region)
        print(f"   {label}: hit rate {executor.hit_rate:.0%}, "
              f"user waited for {executor.foreground_cost:.0f} tile computations "
              f"({executor.background_cost:.0f} done speculatively)")


def main() -> None:
    sky = grid_table(side=128, value_fn="hotspots", num_hotspots=4, seed=0)
    print(f"Synthetic sky survey: {sky.num_rows} cells, hotspots hidden somewhere.\n")
    find_bright_regions(sky)
    learn_interest_region(sky)
    navigate_with_prefetching(sky)


if __name__ == "__main__":
    main()
